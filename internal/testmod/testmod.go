// Package testmod builds small canonical SPIR-V subset modules shared by the
// test suites of the validator, interpreter, optimizer, fuzzer and targets.
// Each builder returns a fresh module; callers may mutate freely.
package testmod

import "spirvfuzz/internal/spirv"

// Diamond returns a fragment shader with an if/else diamond and a ϕ at the
// merge block:
//
//	entry:  c = Load coord; x = c.x; cond = x < 0.5
//	        SelectionMerge merge; BranchConditional cond, left, right
//	left:   v1 = 1.0;  Branch merge
//	right:  v2 = 0.25; Branch merge
//	merge:  r = ϕ(v1←left, v2←right); Store color (r,r,r,1); Return
func Diamond() *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	half := m.EnsureConstantFloat(0.5)
	one := m.EnsureConstantFloat(1)
	quarter := m.EnsureConstantFloat(0.25)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	cond := b.Emit(spirv.OpFOrdLessThan, s.Bool, x, half)
	left, right, merge := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.SelectionMerge(merge)
	b.BranchCond(cond, left, right)

	b.Begin(left)
	v1 := b.Emit(spirv.OpCopyObject, s.Float, one)
	b.Branch(merge)

	b.Begin(right)
	v2 := b.Emit(spirv.OpCopyObject, s.Float, quarter)
	b.Branch(merge)

	b.Begin(merge)
	r := b.Phi(s.Float, v1, left, v2, right)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, r, r, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// Loop returns a fragment shader that sums the integers 0..9 in a
// structured loop and writes sum/45 to every channel (i.e. a uniform gray
// image of value 1.0 since 45/45 = 1):
//
//	entry:   Branch header
//	header:  i = ϕ(0←entry, i'←cont); s = ϕ(0←entry, s'←cont)
//	         LoopMerge merge cont; Branch check
//	check:   c = i < 10; BranchConditional c, body, merge
//	body:    s' = s + i; Branch cont
//	cont:    i' = i + 1; Branch header
//	merge:   f = ConvertSToF s; g = f / 45.0; Store color (g,g,g,1); Return
func Loop() *spirv.Module {
	return LoopN(10)
}

// LoopN is Loop with a configurable iteration count; the output gray level
// is sum(0..n-1) / (n*(n-1)/2), i.e. always 1.0.
func LoopN(n int32) *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	zero := m.EnsureConstantInt(0)
	oneI := m.EnsureConstantInt(1)
	limit := m.EnsureConstantInt(n)
	denom := m.EnsureConstantFloat(float32(n * (n - 1) / 2))
	oneF := m.EnsureConstantFloat(1)

	header, check, body, cont, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	entry := b.Fn.Blocks[0].Label
	b.Branch(header)

	b.Begin(header)
	iPhiID := m.FreshID()
	sPhiID := m.FreshID()
	iNext := m.FreshID()
	sNext := m.FreshID()
	b.Blk.Phis = append(b.Blk.Phis,
		spirv.NewInstr(spirv.OpPhi, s.Int, iPhiID, uint32(zero), uint32(entry), uint32(iNext), uint32(cont)),
		spirv.NewInstr(spirv.OpPhi, s.Int, sPhiID, uint32(zero), uint32(entry), uint32(sNext), uint32(cont)),
	)
	b.LoopMerge(merge, cont)
	b.Branch(check)

	b.Begin(check)
	c := b.Emit(spirv.OpSLessThan, s.Bool, iPhiID, limit)
	b.BranchCond(c, body, merge)

	b.Begin(body)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpIAdd, s.Int, sNext, uint32(sPhiID), uint32(iPhiID)))
	b.Branch(cont)

	b.Begin(cont)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpIAdd, s.Int, iNext, uint32(iPhiID), uint32(oneI)))
	b.Branch(header)

	b.Begin(merge)
	f := b.Emit(spirv.OpConvertSToF, s.Float, sPhiID)
	g := b.Emit(spirv.OpFDiv, s.Float, f, denom)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, g, g, g, oneF)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// Caller returns a shader whose main calls a helper function
// brighten(x) = x + 0.25 on the coordinate's x component.
func Caller() *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	void := m.EnsureTypeVoid()
	f32 := m.EnsureTypeFloat(32)
	vec2 := m.EnsureTypeVector(f32, 2)
	vec4 := m.EnsureTypeVector(f32, 4)
	_ = void

	// Helper first so main can reference it.
	quarter := m.EnsureConstantFloat(0.25)
	helper, params := b.BeginFunction("brighten", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	sum := b.Emit(spirv.OpFAdd, f32, params[0], quarter)
	b.ReturnValue(sum)
	b.EndFunction()

	s := b.BeginFragmentShell()
	one := m.EnsureConstantFloat(1)
	c := b.Emit(spirv.OpLoad, vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, f32, uint32(c), 0)
	r := b.Emit(spirv.OpFunctionCall, f32, helper, x)
	col := b.Emit(spirv.OpCompositeConstruct, vec4, r, r, r, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// Matrix returns a shader exercising matrix-vector math, struct and array
// access chains and a uniform input named "scale":
//
//	color.rgb = (M × coord.xyxy.xy) scaled by uniform, alpha 1.
func Matrix() *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	one := m.EnsureConstantFloat(1)
	half := m.EnsureConstantFloat(0.5)
	colType := s.Vec2
	mat2 := m.EnsureTypeMatrix(colType, 2)
	col0 := m.EnsureConstantComposite(colType, one, half)
	col1 := m.EnsureConstantComposite(colType, half, one)
	matC := m.EnsureConstantComposite(mat2, col0, col1)
	scale := b.Uniform("scale", s.Float, 1)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	mv := b.Emit(spirv.OpMatrixTimesVector, s.Vec2, matC, c)
	sc := b.Emit(spirv.OpLoad, s.Float, scale)
	scaled := b.Emit(spirv.OpVectorTimesScalar, s.Vec2, mv, sc)
	r := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(scaled), 0)
	g := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(scaled), 1)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, g, half, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// KillHalf returns a shader that discards fragments on the left half of the
// image (coord.x < 0.5 → OpKill) and colors the rest white.
func KillHalf() *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	half := m.EnsureConstantFloat(0.5)
	one := m.EnsureConstantFloat(1)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	cond := b.Emit(spirv.OpFOrdLessThan, s.Bool, x, half)
	killBlk, rest := b.NewLabel(), b.NewLabel()
	b.SelectionMerge(rest)
	b.BranchCond(cond, killBlk, rest)

	b.Begin(killBlk)
	b.Kill()

	b.Begin(rest)
	col := m.EnsureConstantComposite(s.Vec4, one, one, one, one)
	colv := b.Emit(spirv.OpCopyObject, s.Vec4, col)
	b.Store(s.Color, colv)
	b.FinishFragmentShell(s)
	return m
}

// LocalVars returns a shader exercising Function-storage variables and
// access chains: it stores the coordinate into a local struct { vec2; float }
// and reads components back through OpAccessChain.
func LocalVars() *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	one := m.EnsureConstantFloat(1)
	idx0 := m.EnsureConstantInt(0)
	idx1 := m.EnsureConstantInt(1)
	st := m.EnsureTypeStruct(s.Vec2, s.Float)
	ptrVec2 := m.EnsureTypePointer(spirv.StorageFunction, s.Vec2)
	ptrF := m.EnsureTypePointer(spirv.StorageFunction, s.Float)

	local := b.LocalVariable(st)
	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	pv := b.AccessChain(ptrVec2, local, idx0)
	b.Store(pv, c)
	pf := b.AccessChain(ptrF, local, idx1)
	b.Store(pf, one)
	px := b.AccessChain(ptrF, local, idx0, idx0)
	x := b.Emit(spirv.OpLoad, s.Float, px)
	a := b.Emit(spirv.OpLoad, s.Float, pf)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, x, x, x, a)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// ParityStripes returns a shader that branches on the parity of the pixel
// column: even columns go white, odd columns dark. Rendered on a w-wide
// grid, adjacent pixels always take opposite branch edges, so every lane
// group wider than one pixel diverges at the conditional — the worst case
// for warp-style lane execution and the canonical forced-scalar-fallback
// module in the lane differential tests.
//
// coord.x for column x is (x+0.5)/w, so coord.x*w = x+0.5 and ConvertFToS
// truncates it to exactly x.
func ParityStripes(w int32) *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	wf := m.EnsureConstantFloat(float32(w))
	oneI := m.EnsureConstantInt(1)
	zeroI := m.EnsureConstantInt(0)
	one := m.EnsureConstantFloat(1)
	dark := m.EnsureConstantFloat(0.2)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	xs := b.Emit(spirv.OpFMul, s.Float, x, wf)
	xi := b.Emit(spirv.OpConvertFToS, s.Int, xs)
	parity := b.Emit(spirv.OpBitwiseAnd, s.Int, xi, oneI)
	cond := b.Emit(spirv.OpIEqual, s.Bool, parity, zeroI)
	even, odd, merge := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.SelectionMerge(merge)
	b.BranchCond(cond, even, odd)

	b.Begin(even)
	v1 := b.Emit(spirv.OpCopyObject, s.Float, one)
	b.Branch(merge)

	b.Begin(odd)
	v2 := b.Emit(spirv.OpCopyObject, s.Float, dark)
	b.Branch(merge)

	b.Begin(merge)
	r := b.Phi(s.Float, v1, even, v2, odd)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, r, r, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// LoopAccum returns a shader that runs a counted loop of n iterations
// accumulating coordinate-dependent float arithmetic:
//
//	a₀ = x;  aᵢ₊₁ = aᵢ·0.9 + x·y
//
// and writes the accumulator to the red/green channels. The iteration count
// is the same for every pixel, so control flow is perfectly uniform across
// a lane group while the per-lane float values differ — the divergence-light,
// dispatch-heavy shape that lane execution accelerates most.
func LoopAccum(n int32) *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	zero := m.EnsureConstantInt(0)
	oneI := m.EnsureConstantInt(1)
	limit := m.EnsureConstantInt(n)
	decay := m.EnsureConstantFloat(0.9)
	hund := m.EnsureConstantFloat(0.01)
	oneF := m.EnsureConstantFloat(1)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	y := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 1)
	xy := b.Emit(spirv.OpFMul, s.Float, x, y)

	header, check, body, cont, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	entry := b.Fn.Blocks[0].Label
	b.Branch(header)

	b.Begin(header)
	iPhi := m.FreshID()
	aPhi := m.FreshID()
	iNext := m.FreshID()
	aNext := m.FreshID()
	b.Blk.Phis = append(b.Blk.Phis,
		spirv.NewInstr(spirv.OpPhi, s.Int, iPhi, uint32(zero), uint32(entry), uint32(iNext), uint32(cont)),
		spirv.NewInstr(spirv.OpPhi, s.Float, aPhi, uint32(x), uint32(entry), uint32(aNext), uint32(cont)),
	)
	b.LoopMerge(merge, cont)
	b.Branch(check)

	b.Begin(check)
	cd := b.Emit(spirv.OpSLessThan, s.Bool, iPhi, limit)
	b.BranchCond(cd, body, merge)

	b.Begin(body)
	// f(a) = 0.9a - 0.0081a^2 + xy: a contraction on the coord domain, so
	// the accumulator stays bounded for any n — no Inf/NaN to mask float
	// non-associativity in differential runs. Five float ops per iteration
	// keep the loop arithmetic-dominated, like real shader inner loops.
	scaled := m.FreshID()
	sq := m.FreshID()
	damp := m.FreshID()
	mix := m.FreshID()
	b.Blk.Body = append(b.Blk.Body,
		spirv.NewInstr(spirv.OpFMul, s.Float, scaled, uint32(aPhi), uint32(decay)),
		spirv.NewInstr(spirv.OpFMul, s.Float, sq, uint32(scaled), uint32(scaled)),
		spirv.NewInstr(spirv.OpFMul, s.Float, damp, uint32(sq), uint32(hund)),
		spirv.NewInstr(spirv.OpFAdd, s.Float, mix, uint32(scaled), uint32(xy)),
		spirv.NewInstr(spirv.OpFSub, s.Float, aNext, uint32(mix), uint32(damp)),
	)
	b.Branch(cont)

	b.Begin(cont)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpIAdd, s.Int, iNext, uint32(iPhi), uint32(oneI)))
	b.Branch(header)

	b.Begin(merge)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, aPhi, aPhi, y, oneF)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

// All returns every canonical module with a name, for table-driven tests.
func All() map[string]*spirv.Module {
	return map[string]*spirv.Module{
		"diamond":   Diamond(),
		"loop":      Loop(),
		"caller":    Caller(),
		"matrix":    Matrix(),
		"killhalf":  KillHalf(),
		"localvars": LocalVars(),
		"stripes":   ParityStripes(8),
		"loopaccum": LoopAccum(16),
	}
}
