package fuzz

import (
	"math"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// TypeScaleUniform identifies the input-modifying transformation.
const TypeScaleUniform = "ScaleUniform"

// ScaleUniform modifies the module and its input *in sync* — the first item
// of future work in the paper's conclusion ("transformations that modify
// both a SPIR-V module and its input in sync"). The transformation doubles
// the value of a float uniform in the input and compensates in the module by
// multiplying every load of that uniform by an existing 0.5 constant,
// rewriting all uses of each load to the compensated value. Doubling and
// halving by powers of two are exact in IEEE arithmetic, so semantics are
// preserved bit-for-bit.
type ScaleUniform struct {
	UniformVar spirv.ID `json:"uniformVar"`
	HalfConst  spirv.ID `json:"halfConst"`
	// FreshIDs maps each existing OpLoad (by result id) of the uniform to
	// the fresh id of its compensation multiply. The map must cover exactly
	// the loads present when the transformation applies, which makes the
	// transformation self-invalidating during reduction when an earlier
	// load-creating transformation is removed.
	FreshIDs map[spirv.ID]spirv.ID `json:"freshIds,omitempty"`
}

// Type implements Transformation.
func (t *ScaleUniform) Type() string { return TypeScaleUniform }

// loadsOf returns the result ids of every OpLoad of the uniform variable.
func (t *ScaleUniform) loadsOf(c *Context) []spirv.ID {
	var out []spirv.ID
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			for _, ins := range b.Body {
				if ins.Op == spirv.OpLoad && ins.IDOperand(0) == t.UniformVar {
					out = append(out, ins.Result)
				}
			}
		}
	}
	return out
}

// Precondition: the variable is a float-scalar uniform with a known, finite,
// doublable input value; HalfConst is the 0.5 constant of the same type;
// FreshIDs covers exactly the current loads with fresh distinct targets; and
// no load participates in a Synonymous fact (its raw value is about to
// change, which would falsify such facts).
func (t *ScaleUniform) Precondition(c *Context) bool {
	def := c.Mod.Def(t.UniformVar)
	if def == nil || def.Op != spirv.OpVariable {
		return false
	}
	if sc := def.Operands[0]; sc != spirv.StorageUniformConstant && sc != spirv.StorageUniform {
		return false
	}
	_, pointee, ok := c.Mod.PointerInfo(def.Type)
	if !ok || !c.Mod.IsFloatType(pointee) {
		return false
	}
	val, ok := c.UniformValue(t.UniformVar)
	if !ok || val.Kind != interp.KindFloat {
		return false
	}
	doubled := val.F * 2
	if math.IsInf(float64(doubled), 0) || math.IsNaN(float64(doubled)) {
		return false
	}
	if hv, ok := c.Mod.ConstantFloatValue(t.HalfConst); !ok || hv != 0.5 || c.Mod.TypeOf(t.HalfConst) != pointee {
		return false
	}
	loads := t.loadsOf(c)
	if len(loads) != len(t.FreshIDs) {
		return false
	}
	seen := make(map[spirv.ID]bool, len(loads))
	for _, l := range loads {
		fresh, ok := t.FreshIDs[l]
		if !ok || seen[fresh] || !c.IsFreshID(fresh) {
			return false
		}
		seen[fresh] = true
		if len(c.Facts.WholeSynonymsOf(l)) != 0 {
			return false
		}
	}
	return true
}

// Apply doubles the input value and compensates every load.
func (t *ScaleUniform) Apply(c *Context) {
	def := c.Mod.Def(t.UniformVar)
	_, pointee, _ := c.Mod.PointerInfo(def.Type)
	name := uniformName(c.Mod, t.UniformVar)
	val := c.Inputs.Uniforms[name]
	c.Inputs.Uniforms[name] = interp.FloatVal(val.F * 2)

	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			for i := 0; i < len(b.Body); i++ {
				ins := b.Body[i]
				if ins.Op != spirv.OpLoad || ins.IDOperand(0) != t.UniformVar {
					continue
				}
				fresh := t.FreshIDs[ins.Result]
				c.ClaimID(fresh)
				mul := spirv.NewInstr(spirv.OpFMul, pointee, fresh, uint32(ins.Result), uint32(t.HalfConst))
				InsertBefore(b, i+1, mul)
				replaceUsesInFunction(fn, ins.Result, fresh, map[*spirv.Instruction]bool{ins: true, mul: true})
				i++ // skip the inserted multiply
			}
		}
	}
}

// uniformName returns the OpName of a variable, or "".
func uniformName(m *spirv.Module, id spirv.ID) string {
	for _, n := range m.Names {
		if n.Op == spirv.OpName && spirv.ID(n.Operands[0]) == id {
			s, _ := spirv.DecodeString(n.Operands[1:])
			return s
		}
	}
	return ""
}

// replaceUsesInFunction rewrites uses of old to new across fn, skipping the
// instructions in skip.
func replaceUsesInFunction(fn *spirv.Function, old, new spirv.ID, skip map[*spirv.Instruction]bool) {
	for _, b := range fn.Blocks {
		b.Instructions(func(ins *spirv.Instruction) {
			if skip[ins] {
				return
			}
			ins.MapUses(func(id spirv.ID) spirv.ID {
				if id == old {
					return new
				}
				return id
			})
		})
	}
}

func init() {
	register(TypeScaleUniform, func() Transformation { return &ScaleUniform{} })
}
