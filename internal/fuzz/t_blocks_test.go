package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

// renderEq asserts the context's module renders the same image as want.
func renderEq(t *testing.T, c *fuzz.Context, want *interp.Image) {
	t.Helper()
	got, err := interp.Render(c.Mod, c.Inputs)
	if err != nil {
		t.Fatalf("variant faults: %v\n%s", err, c.Mod)
	}
	if !got.Equal(want) {
		t.Fatalf("image changed (%d pixels)\n%s", got.DiffCount(want), c.Mod)
	}
}

func baseline(t *testing.T, m *spirv.Module) (*fuzz.Context, *interp.Image) {
	t.Helper()
	c := ctxOf(m)
	img, err := interp.Render(m, c.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	return c, img
}

func TestSplitBlockTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	fn := c.Mod.EntryPointFunction()
	entry := fn.Entry()
	merge := fn.Blocks[len(fn.Blocks)-1]
	anchor := merge.Body[0] // the CompositeConstruct feeding the store
	nBlocks := len(fn.Blocks)

	// The entry is a selection header (it carries a merge instruction), so
	// splitting it is rejected; construct-free blocks split fine.
	rejected(t, c, &fuzz.SplitBlock{Anchor: entry.Body[1].Result, Fresh: c.Mod.Bound})

	applyOK(t, c, &fuzz.SplitBlock{Anchor: anchor.Result, Fresh: c.Mod.Bound})
	renderEq(t, c, want)
	if len(fn.Blocks) != nBlocks+1 {
		t.Fatal("split must add one block")
	}
	tail := fn.Blocks[len(fn.Blocks)-1]
	if tail.Body[0] != anchor {
		t.Fatal("anchor must start the new block")
	}
	if merge.Term.Op != spirv.OpBranch || merge.Term.IDOperand(0) != tail.Label {
		t.Fatal("old block must branch to the new one")
	}
	if len(merge.Phis) == 0 || len(tail.Phis) != 0 {
		t.Fatal("ϕs must stay in the original block")
	}

	// Splitting on a missing id, a ϕ, or with a used id is rejected.
	rejected(t, c, &fuzz.SplitBlock{Anchor: 9999, Fresh: c.Mod.Bound})
	rejected(t, c, &fuzz.SplitBlock{Anchor: merge.Phis[0].Result, Fresh: c.Mod.Bound})
	rejected(t, c, &fuzz.SplitBlock{Anchor: anchor.Result, Fresh: entry.Label})
}

func TestSplitBlockRetargetsPhis(t *testing.T) {
	// Splitting the left arm of the diamond: the merge ϕ's parent for that
	// path must become the new tail block.
	c, want := baseline(t, testmod.Diamond())
	fn := c.Mod.EntryPointFunction()
	left := fn.Blocks[1]
	anchor := left.Body[0]
	applyOK(t, c, &fuzz.SplitBlock{Anchor: anchor.Result, Fresh: c.Mod.Bound})
	renderEq(t, c, want)
	merge := fn.Blocks[len(fn.Blocks)-1]
	for i := 1; i < len(merge.Phis[0].Operands); i += 2 {
		if spirv.ID(merge.Phis[0].Operands[i]) == left.Label {
			t.Fatal("ϕ still names the split block as parent")
		}
	}
}

func TestAddDeadBlockTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Loop())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry() // branches unconditionally to the loop header

	trueC := m.EnsureConstantBool(true)
	tr := &fuzz.AddDeadBlock{Fresh: m.Bound, Block: entry.Label, TrueConst: trueC}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if !c.Facts.IsDeadBlock(tr.Fresh) {
		t.Fatal("DeadBlock fact missing")
	}
	if entry.Term.Op != spirv.OpBranchConditional || entry.Merge == nil {
		t.Fatal("header must gain a conditional branch with a merge")
	}
	// The loop header's ϕs must have gained an edge for the dead block.
	header := fn.Blocks[1]
	for _, phi := range header.Phis {
		found := false
		for i := 1; i < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i]) == tr.Fresh {
				found = true
			}
		}
		if !found {
			t.Fatalf("ϕ %%%d missing an edge for the new dead predecessor", phi.Result)
		}
	}

	// Preconditions: needs OpConstantTrue and an unconditional branch.
	falseC := m.EnsureConstantBool(false)
	rejected(t, c, &fuzz.AddDeadBlock{Fresh: m.Bound, Block: fn.Blocks[2].Label, TrueConst: falseC})
	rejected(t, c, &fuzz.AddDeadBlock{Fresh: m.Bound, Block: entry.Label, TrueConst: trueC}) // now conditional
	rejected(t, c, &fuzz.AddDeadBlock{Fresh: m.Bound, Block: 9999, TrueConst: trueC})
}

func TestReplaceBranchWithKillTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	left := fn.Blocks[1]

	// Without the DeadBlock fact, killing a live block is rejected (it would
	// change semantics).
	rejected(t, c, &fuzz.ReplaceBranchWithKill{Block: left.Label})

	// Build a dead block, then kill its branch.
	trueC := m.EnsureConstantBool(true)
	dead := &fuzz.AddDeadBlock{Fresh: m.Bound, Block: left.Label, TrueConst: trueC}
	applyOK(t, c, dead)
	kill := &fuzz.ReplaceBranchWithKill{Block: dead.Fresh}
	applyOK(t, c, kill)
	renderEq(t, c, want)
	_, db := c.FindBlock(dead.Fresh)
	if db.Term.Op != spirv.OpKill {
		t.Fatal("terminator must be OpKill")
	}
	// The merge ϕ must no longer list the dead block as a parent.
	merge := fn.Blocks[len(fn.Blocks)-1]
	for _, phi := range merge.Phis {
		for i := 1; i < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i]) == dead.Fresh {
				t.Fatal("stale ϕ edge for killed block")
			}
		}
	}
	// Idempotence: the block no longer ends in OpBranch.
	rejected(t, c, &fuzz.ReplaceBranchWithKill{Block: dead.Fresh})
}

func TestMoveBlockDownTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	fn := c.Mod.EntryPointFunction()
	left, right := fn.Blocks[1], fn.Blocks[2]

	rejected(t, c, &fuzz.MoveBlockDown{Block: fn.Blocks[0].Label})                // entry
	rejected(t, c, &fuzz.MoveBlockDown{Block: fn.Blocks[len(fn.Blocks)-1].Label}) // last
	rejected(t, c, &fuzz.MoveBlockDown{Block: 9999})

	applyOK(t, c, &fuzz.MoveBlockDown{Block: left.Label})
	renderEq(t, c, want)
	if fn.Blocks[1] != right || fn.Blocks[2] != left {
		t.Fatal("blocks not swapped")
	}

	// Moving the merge-dominating structure apart is rejected: in the loop
	// module, the header immediately dominates the check block after it.
	c2, _ := baseline(t, testmod.Loop())
	fn2 := c2.Mod.EntryPointFunction()
	rejected(t, c2, &fuzz.MoveBlockDown{Block: fn2.Blocks[1].Label})
}

func TestWrapRegionInSelectionBothForms(t *testing.T) {
	for _, thenForm := range []bool{true, false} {
		c, want := baseline(t, testmod.Loop())
		m := c.Mod
		fn := m.EntryPointFunction()
		body := fn.Blocks[3] // loop body: defs do not escape (aNext feeds a ϕ... check)
		// The loop body's definition aNext is used by the header ϕ, so it
		// escapes; use the continue block instead? Its iNext also escapes.
		// The entry block's defs do not escape in Loop (it only branches).
		entry := fn.Entry()
		_ = body
		cond := m.EnsureConstantBool(thenForm)
		tr := &fuzz.WrapRegionInSelection{
			Block:      entry.Label,
			FreshInner: m.Bound,
			FreshMerge: m.Bound + 1,
			CondConst:  cond,
		}
		applyOK(t, c, tr)
		renderEq(t, c, want)
		if entry.Merge == nil || entry.Term.Op != spirv.OpBranchConditional {
			t.Fatal("wrapped block must become a selection header")
		}
		// Both forms share one transformation type (Section 3.3).
		if tr.Type() != fuzz.TypeWrapRegionInSelection {
			t.Fatal("type mismatch")
		}
	}
}

func TestWrapRegionRejectsEscapingDefs(t *testing.T) {
	c, _ := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	left := fn.Blocks[1] // its CopyObject result feeds the merge ϕ: escapes
	cond := m.EnsureConstantBool(true)
	rejected(t, c, &fuzz.WrapRegionInSelection{
		Block: left.Label, FreshInner: m.Bound, FreshMerge: m.Bound + 1, CondConst: cond,
	})
	// Entry block of the diamond: its defs (condition) are used by its own
	// terminator... the terminator is conditional anyway, so rejected.
	rejected(t, c, &fuzz.WrapRegionInSelection{
		Block: fn.Entry().Label, FreshInner: m.Bound, FreshMerge: m.Bound + 1, CondConst: cond,
	})
	// Fresh ids must be distinct.
	loopC, _ := baseline(t, testmod.Loop())
	lm := loopC.Mod
	lcond := lm.EnsureConstantBool(true)
	rejected(t, loopC, &fuzz.WrapRegionInSelection{
		Block: lm.EntryPointFunction().Entry().Label, FreshInner: lm.Bound, FreshMerge: lm.Bound, CondConst: lcond,
	})
}
