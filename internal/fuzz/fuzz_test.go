package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv/validate"
)

// TestFuzzPreservesSemantics is the central invariant (Definition 2.4 /
// Theorem 2.6): every variant the fuzzer produces must validate and render
// exactly the same image as its original.
func TestFuzzPreservesSemantics(t *testing.T) {
	refs := corpus.References()
	donors := corpus.Donors()
	for _, item := range refs {
		item := item
		t.Run(item.Name, func(t *testing.T) {
			want, err := interp.Render(item.Mod, item.Inputs)
			if err != nil {
				t.Fatalf("reference does not render: %v", err)
			}
			for seed := int64(0); seed < 4; seed++ {
				res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
					Seed:                  seed,
					Donors:                donors,
					EnableRecommendations: true,
					ValidateAfterEachPass: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				got, err := interp.Render(res.Variant, res.Inputs)
				if err != nil {
					t.Fatalf("seed %d: variant faults after %d transformations: %v\n%s",
						seed, len(res.Transformations), err, res.Variant)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d: image changed after %d transformations (%d pixels differ)\npasses: %v\n%s",
						seed, len(res.Transformations), got.DiffCount(want), res.PassesRun, res.Variant)
				}
			}
		})
	}
}

// TestFuzzAppliesTransformations ensures fuzzing is actually doing work:
// across a handful of seeds on a control-flow-rich reference, the average
// sequence is substantial and variants grow.
func TestFuzzAppliesTransformations(t *testing.T) {
	item := corpus.References()[5] // diamond3
	total, grew := 0, 0
	for seed := int64(40); seed < 45; seed++ {
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  seed,
			Donors:                corpus.Donors(),
			EnableRecommendations: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		total += len(res.Transformations)
		if res.Variant.InstructionCount() > item.Mod.InstructionCount() {
			grew++
		}
	}
	if total < 50 {
		t.Fatalf("only %d transformations across 5 seeds", total)
	}
	if grew < 4 {
		t.Fatalf("variants grew in only %d of 5 runs", grew)
	}
}

// TestFuzzDeterministicForSeed checks the run is a pure function of the
// seed.
func TestFuzzDeterministicForSeed(t *testing.T) {
	item := corpus.References()[3]
	donors := corpus.Donors()
	a, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 7, Donors: donors, EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 7, Donors: donors, EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Variant.String() != b.Variant.String() {
		t.Fatal("same seed produced different variants")
	}
	c, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 8, Donors: donors, EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Variant.String() == c.Variant.String() {
		t.Fatal("different seeds produced identical variants (suspicious)")
	}
}

// TestReplayReproducesVariant: replaying the recorded sequence on the
// original module must rebuild the variant exactly — the property reduction
// relies on.
func TestReplayReproducesVariant(t *testing.T) {
	for _, item := range corpus.References()[:6] {
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:   99,
			Donors: corpus.Donors(),
		})
		if err != nil {
			t.Fatal(err)
		}
		replayed, applied := fuzz.Replay(item.Mod, item.Inputs, res.Transformations)
		if len(applied) != len(res.Transformations) {
			t.Fatalf("%s: replay applied %d of %d transformations", item.Name, len(applied), len(res.Transformations))
		}
		if replayed.String() != res.Variant.String() {
			t.Fatalf("%s: replay diverged from variant", item.Name)
		}
	}
}

// TestSerializationRoundTrip: sequences survive JSON round trips and still
// replay identically (donors are not needed at replay time).
func TestSerializationRoundTrip(t *testing.T) {
	item := corpus.References()[7]
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 5, Donors: corpus.Donors(), EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := fuzz.MarshalSequence(res.Transformations)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fuzz.UnmarshalSequence(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Transformations) {
		t.Fatalf("lost transformations: %d vs %d", len(back), len(res.Transformations))
	}
	replayed, _ := fuzz.Replay(item.Mod, item.Inputs, back)
	if replayed.String() != res.Variant.String() {
		t.Fatal("deserialized sequence replays differently")
	}
	if err := validate.Module(replayed); err != nil {
		t.Fatal(err)
	}
}

// TestSubsequenceReplayStaysValid: arbitrary subsequences (as explored by
// the reducer) must still produce valid, semantics-preserving variants,
// because skipped preconditions guard all dependencies.
func TestSubsequenceReplayStaysValid(t *testing.T) {
	item := corpus.References()[4]
	want, err := interp.Render(item.Mod, item.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 11, Donors: corpus.Donors(), EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Transformations)
	if n < 8 {
		t.Skipf("sequence too short (%d)", n)
	}
	// Try a few structured subsequences: evens, odds, first half, last half.
	subsets := [][]int{{}, nil, nil, nil}
	for i := 0; i < n; i += 2 {
		subsets[0] = append(subsets[0], i)
	}
	for i := 1; i < n; i += 2 {
		subsets[1] = append(subsets[1], i)
	}
	for i := 0; i < n/2; i++ {
		subsets[2] = append(subsets[2], i)
	}
	for i := n / 2; i < n; i++ {
		subsets[3] = append(subsets[3], i)
	}
	for si, keep := range subsets {
		ctx, _ := fuzz.ReplaySubsequenceContext(item.Mod, item.Inputs, res.Transformations, keep)
		if err := validate.Module(ctx.Mod); err != nil {
			t.Fatalf("subset %d: invalid module: %v\n%s", si, err, ctx.Mod)
		}
		got, err := interp.Render(ctx.Mod, ctx.Inputs)
		if err != nil {
			t.Fatalf("subset %d: %v", si, err)
		}
		if !got.Equal(want) {
			t.Fatalf("subset %d: image changed", si)
		}
	}
}

// TestSimpleModeRunsWithoutRecommendations covers spirv-fuzz-simple.
func TestSimpleModeRunsWithoutRecommendations(t *testing.T) {
	item := corpus.References()[1]
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 3, Donors: corpus.Donors(), EnableRecommendations: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transformations) == 0 {
		t.Fatal("no transformations in simple mode")
	}
}

// TestTransformationCap enforces the 2000-transformation limit (scaled down
// here for speed).
func TestTransformationCap(t *testing.T) {
	item := corpus.References()[0]
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
		Seed:                  1,
		Donors:                corpus.Donors(),
		MaxTransformations:    25,
		MaxPasses:             100,
		EnableRecommendations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transformations) > 25 {
		t.Fatalf("cap exceeded: %d", len(res.Transformations))
	}
}

// TestCorpusValidatesAndRenders sanity-checks the corpus itself.
func TestCorpusValidatesAndRenders(t *testing.T) {
	refs := corpus.References()
	if len(refs) != 21 {
		t.Fatalf("expected 21 references, got %d", len(refs))
	}
	for _, item := range refs {
		if err := validate.Module(item.Mod); err != nil {
			t.Errorf("%s: %v", item.Name, err)
			continue
		}
		img, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Errorf("%s: %v", item.Name, err)
			continue
		}
		// Determinism.
		img2, _ := interp.Render(item.Mod, item.Inputs)
		if !img.Equal(img2) {
			t.Errorf("%s: nondeterministic render", item.Name)
		}
	}
	donors := corpus.Donors()
	if len(donors) != 43 {
		t.Fatalf("expected 43 donors, got %d", len(donors))
	}
	for i, d := range donors {
		if err := validate.Module(d); err != nil {
			t.Errorf("donor %d: %v", i, err)
		}
	}
}

func TestResultTypeCounts(t *testing.T) {
	item := corpus.References()[3]
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 6, Donors: corpus.Donors(), EnableRecommendations: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.TypeCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(res.Transformations) {
		t.Fatalf("counts sum %d != %d transformations", total, len(res.Transformations))
	}
	reg := map[string]bool{}
	for _, name := range fuzz.RegisteredTypes() {
		reg[name] = true
	}
	for name := range counts {
		if !reg[name] {
			t.Fatalf("unknown type %q in counts", name)
		}
	}
}
