package fuzz

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file serializes transformation sequences. The real spirv-fuzz encodes
// transformations as Protocol Buffers; this reproduction uses JSON from the
// standard library. The property that matters is preserved: a serialized
// sequence is fully self-contained (AddFunction embeds the donated function,
// InlineFunction embeds its fresh-id map) so replay needs only the original
// module and inputs.

// registry maps a transformation's Type() string to a factory producing a
// pointer to its zero value for unmarshalling.
var registry = map[string]func() Transformation{}

// register installs a factory; called from init functions next to each
// transformation type.
func register(name string, f func() Transformation) {
	if _, dup := registry[name]; dup {
		panic("fuzz: duplicate transformation type " + name)
	}
	registry[name] = f
}

// RegisteredTypes returns all transformation type names, sorted.
func RegisteredTypes() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type recordEnvelope struct {
	Type string          `json:"type"`
	Args json.RawMessage `json:"args"`
}

// MarshalSequence serializes a transformation sequence to JSON.
func MarshalSequence(ts []Transformation) ([]byte, error) {
	envs := make([]recordEnvelope, len(ts))
	for i, t := range ts {
		args, err := json.Marshal(t)
		if err != nil {
			return nil, fmt.Errorf("fuzz: marshal %s: %w", t.Type(), err)
		}
		envs[i] = recordEnvelope{Type: t.Type(), Args: args}
	}
	return json.MarshalIndent(envs, "", "  ")
}

// UnmarshalSequence parses a transformation sequence from JSON.
func UnmarshalSequence(data []byte) ([]Transformation, error) {
	var envs []recordEnvelope
	if err := json.Unmarshal(data, &envs); err != nil {
		return nil, fmt.Errorf("fuzz: unmarshal sequence: %w", err)
	}
	out := make([]Transformation, len(envs))
	for i, env := range envs {
		mk, ok := registry[env.Type]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown transformation type %q", env.Type)
		}
		t := mk()
		if err := json.Unmarshal(env.Args, t); err != nil {
			return nil, fmt.Errorf("fuzz: unmarshal %s: %w", env.Type, err)
		}
		out[i] = t
	}
	return out, nil
}
