package fuzz_test

import (
	"math/rand"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/testmod"
)

// runPass drives one named pass over a context, trying several seeds until
// it emits, and returns the number of transformations applied. The module is
// validated afterwards regardless.
func runPass(t *testing.T, c *fuzz.Context, name string) int {
	t.Helper()
	var pass *fuzz.Pass
	for _, p := range fuzz.Passes(corpus.Donors()) {
		if p.Name == name {
			q := p
			pass = &q
		}
	}
	if pass == nil {
		t.Fatalf("no pass named %s", name)
	}
	applied := 0
	emit := func(tr fuzz.Transformation) bool {
		if !tr.Precondition(c) {
			return false
		}
		tr.Apply(c)
		applied++
		return true
	}
	for seed := int64(0); seed < 8; seed++ {
		pass.Run(c, rand.New(rand.NewSource(seed)), emit)
	}
	if err := validate.Module(c.Mod); err != nil {
		t.Fatalf("pass %s broke the module: %v\n%s", name, err, c.Mod)
	}
	return applied
}

// loopCtx returns a context over the loop reference with standard uniforms.
func richCtx(t *testing.T, name string) *fuzz.Context {
	t.Helper()
	for _, item := range corpus.References() {
		if item.Name == name {
			return fuzz.NewContext(item.Mod, item.Inputs)
		}
	}
	t.Fatalf("no reference %s", name)
	return nil
}

func TestEveryPassEmitsSomewhere(t *testing.T) {
	// For each pass, a module where it has opportunities plus any
	// prerequisite pass to run first.
	cases := []struct {
		pass    string
		ref     string
		prereqs []string
	}{
		{fuzz.PassDonateFunctions, "diamond2", nil},
		{fuzz.PassAddDeadBlocks, "loop10", nil},
		{fuzz.PassSplitBlocks, "diamond2", nil},
		{fuzz.PassCopyObjects, "diamond2", nil},
		{fuzz.PassAddNoOpArithmetic, "selects2", nil},
		{fuzz.PassCompositeSynonyms, "diamond2", nil},
		{fuzz.PassReplaceIdsWithSynonyms, "diamond2", []string{fuzz.PassCopyObjects}},
		{fuzz.PassObfuscateConstants, "gradient1", nil},
		{fuzz.PassPermuteBlocks, "diamond3", nil},
		{fuzz.PassReplaceBranchesWithKill, "loop10", []string{fuzz.PassAddDeadBlocks}},
		{fuzz.PassWrapRegions, "loop10", nil},
		{fuzz.PassAddFunctionCalls, "diamond2", []string{fuzz.PassDonateFunctions}},
		{fuzz.PassInlineFunctions, "calls2", nil},
		{fuzz.PassSetFunctionControls, "calls1", nil},
		{fuzz.PassAddParameters, "calls2", nil},
		{fuzz.PassPropagateInstructionsUp, "loop10", nil},
		{fuzz.PassSwapCommutableOperands, "gradient1", nil},
		{fuzz.PassAddLoadsStores, "diamond2", nil},
		{fuzz.PassScaleUniforms, "matrix1", []string{fuzz.PassObfuscateConstants}},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		tc := tc
		covered[tc.pass] = true
		t.Run(tc.pass, func(t *testing.T) {
			c := richCtx(t, tc.ref)
			want, err := interp.Render(c.Mod, c.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			for _, pre := range tc.prereqs {
				if runPass(t, c, pre) == 0 {
					t.Fatalf("prerequisite pass %s emitted nothing", pre)
				}
			}
			if got := runPass(t, c, tc.pass); got == 0 {
				t.Fatalf("pass %s emitted nothing on %s across 8 seeds", tc.pass, tc.ref)
			}
			gotImg, err := interp.Render(c.Mod, c.Inputs)
			if err != nil {
				t.Fatalf("variant faults: %v", err)
			}
			if !gotImg.Equal(want) {
				t.Fatalf("pass %s changed the image", tc.pass)
			}
		})
	}
	// Every pass in the registry must be exercised above.
	for _, p := range fuzz.Passes(nil) {
		if !covered[p.Name] {
			t.Errorf("pass %s has no emission test", p.Name)
		}
	}
}

// TestScaleUniformsPassNeedsLoads checks the pass does nothing on modules
// without uniform loads but fires once ObfuscateConstants created one.
func TestScaleUniformsPassNeedsLoads(t *testing.T) {
	c := richCtx(t, "gradient1") // no uniform loads initially
	if got := runPass(t, c, fuzz.PassScaleUniforms); got != 0 {
		// The pass may legitimately apply with zero loads (empty map covers
		// the empty load set) — doubling an unused uniform is still sound.
		// What matters is that semantics hold, which runPass validated; so
		// only check the input value doubled consistently.
		v := c.Inputs.Uniforms["u_one"].F
		if v != 1 && v != 2 && v != 4 {
			t.Fatalf("unexpected uniform value %v", v)
		}
	}
}

// TestPassesDoNotMutateDonors guards against donation accidentally writing
// into the donor modules.
func TestPassesDoNotMutateDonors(t *testing.T) {
	donors := corpus.Donors()
	before := make([]string, len(donors))
	for i, d := range donors {
		before[i] = d.String()
	}
	item := corpus.References()[2]
	for seed := int64(0); seed < 5; seed++ {
		if _, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: seed, Donors: donors, EnableRecommendations: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range donors {
		if d.String() != before[i] {
			t.Fatalf("donor %d mutated by fuzzing", i)
		}
	}
}

// TestFuzzDoesNotMutateOriginal guards the fuzzer's input module.
func TestFuzzDoesNotMutateOriginal(t *testing.T) {
	m := testmod.Diamond()
	before := m.String()
	in := interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"u": interp.FloatVal(1)}}
	if _, err := fuzz.Fuzz(m, in, fuzz.Options{Seed: 3, Donors: corpus.Donors(), EnableRecommendations: true}); err != nil {
		t.Fatal(err)
	}
	if m.String() != before {
		t.Fatal("original module mutated")
	}
	if in.Uniforms["u"].F != 1 {
		t.Fatal("caller inputs mutated")
	}
	_ = spirv.ID(0)
}
