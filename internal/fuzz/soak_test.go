package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv/validate"
)

// TestSoakSemanticPreservation is the heavyweight version of the central
// invariant: many seeds across the whole corpus, validating and rendering
// every variant on its own (possibly co-modified) inputs. Skipped with
// -short.
func TestSoakSemanticPreservation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	donors := corpus.Donors()
	refs := corpus.References()
	checked := 0
	for seed := int64(100); seed < 100+int64(len(refs)*8); seed++ {
		item := refs[int(seed)%len(refs)]
		want, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  seed,
			Donors:                donors,
			EnableRecommendations: seed%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := validate.Module(res.Variant); err != nil {
			t.Fatalf("%s seed %d: invalid after %d transformations: %v", item.Name, seed, len(res.Transformations), err)
		}
		got, err := interp.Render(res.Variant, res.Inputs)
		if err != nil {
			t.Fatalf("%s seed %d: variant faults: %v", item.Name, seed, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s seed %d: image changed after %d transformations\npasses: %v",
				item.Name, seed, len(res.Transformations), res.PassesRun)
		}
		// The serialized sequence must replay to the identical context.
		data, err := fuzz.MarshalSequence(res.Transformations)
		if err != nil {
			t.Fatal(err)
		}
		back, err := fuzz.UnmarshalSequence(data)
		if err != nil {
			t.Fatal(err)
		}
		ctx, applied := fuzz.ReplayContext(item.Mod, item.Inputs, back)
		if len(applied) != len(res.Transformations) {
			t.Fatalf("%s seed %d: replay applied %d of %d", item.Name, seed, len(applied), len(res.Transformations))
		}
		if ctx.Mod.String() != res.Variant.String() {
			t.Fatalf("%s seed %d: replay diverged", item.Name, seed)
		}
		checked++
	}
	t.Logf("soak: %d variants checked", checked)
}
