package fuzz

import (
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// Function-level transformations.

// Transformation type identifiers for function transformations.
const (
	TypeAddFunction            = "AddFunction"
	TypeFunctionCall           = "FunctionCall"
	TypeInlineFunction         = "InlineFunction"
	TypeSetFunctionControl     = "SetFunctionControl"
	TypeAddParameter           = "AddParameter"
	TypePropagateInstructionUp = "PropagateInstructionUp"
)

// EncodedInstr is a self-contained instruction encoding used by AddFunction,
// so that donor modules are not required during reduction (Section 3.2).
type EncodedInstr struct {
	Op       string   `json:"op"`
	TypeID   spirv.ID `json:"type,omitempty"`
	Result   spirv.ID `json:"result,omitempty"`
	Operands []uint32 `json:"operands,omitempty"`
}

// Decode converts the encoding back to an instruction.
func (e EncodedInstr) Decode() (*spirv.Instruction, bool) {
	op, ok := spirv.OpcodeByName(e.Op)
	if !ok {
		return nil, false
	}
	// Copy the operands: the instruction placed in the module must not alias
	// this (immutable, replayable) record, or later transformations that
	// mutate the instruction in place would silently rewrite the recording.
	return spirv.NewInstr(op, e.TypeID, e.Result, append([]uint32(nil), e.Operands...)...), true
}

// EncodeInstr encodes an instruction.
func EncodeInstr(ins *spirv.Instruction) EncodedInstr {
	return EncodedInstr{
		Op:       ins.Op.String(),
		TypeID:   ins.Type,
		Result:   ins.Result,
		Operands: append([]uint32(nil), ins.Operands...),
	}
}

// EncodedBlock encodes one basic block.
type EncodedBlock struct {
	Label spirv.ID       `json:"label"`
	Phis  []EncodedInstr `json:"phis,omitempty"`
	Body  []EncodedInstr `json:"body,omitempty"`
	Merge *EncodedInstr  `json:"merge,omitempty"`
	Term  EncodedInstr   `json:"term"`
}

// AddFunction adds a complete function to the module, typically harvested
// from a donor module with its ids remapped to fresh ids at construction
// time. When LiveSafe is set, the function was made live-safe during
// donation — loops truncated by an iteration limit, no OpKill, stores only
// through locals or pointer parameters — and the LiveSafe fact is recorded.
type AddFunction struct {
	Def      EncodedInstr   `json:"def"` // OpFunction
	Params   []EncodedInstr `json:"params,omitempty"`
	Blocks   []EncodedBlock `json:"blocks"`
	LiveSafe bool           `json:"liveSafe,omitempty"`
}

// Type implements Transformation.
func (t *AddFunction) Type() string { return TypeAddFunction }

// internalIDs returns every id the encoded function defines.
func (t *AddFunction) internalIDs() []spirv.ID {
	ids := []spirv.ID{t.Def.Result}
	for _, p := range t.Params {
		ids = append(ids, p.Result)
	}
	for _, b := range t.Blocks {
		ids = append(ids, b.Label)
		for _, p := range b.Phis {
			ids = append(ids, p.Result)
		}
		for _, ins := range b.Body {
			if ins.Result != 0 {
				ids = append(ids, ins.Result)
			}
		}
	}
	return ids
}

// Precondition: every id the function defines is fresh and distinct, every
// external id it references already exists in the module, and the opcodes
// decode.
func (t *AddFunction) Precondition(c *Context) bool {
	if len(t.Blocks) == 0 {
		return false
	}
	// One defined-id set for the whole check: an encoded function carries
	// hundreds of ids, and probing each via IsFreshID/Def would re-walk the
	// module per id.
	defined := c.DefinedIDs()
	internal := make(map[spirv.ID]bool)
	for _, id := range t.internalIDs() {
		if id == 0 || internal[id] || defined[id] {
			return false
		}
		internal[id] = true
	}
	ok := true
	check := func(e EncodedInstr) {
		ins, decoded := e.Decode()
		if !decoded {
			ok = false
			return
		}
		ins.Uses(func(id spirv.ID) {
			if !internal[id] && !defined[id] {
				ok = false
			}
		})
	}
	check(t.Def)
	for _, p := range t.Params {
		check(p)
	}
	for _, b := range t.Blocks {
		for _, p := range b.Phis {
			check(p)
		}
		for _, ins := range b.Body {
			check(ins)
		}
		if b.Merge != nil {
			check(*b.Merge)
		}
		check(b.Term)
	}
	return ok
}

// Apply appends the function and records the LiveSafe fact if claimed.
func (t *AddFunction) Apply(c *Context) {
	for _, id := range t.internalIDs() {
		c.ClaimID(id)
	}
	def, _ := t.Def.Decode()
	fn := &spirv.Function{Def: def}
	for _, p := range t.Params {
		ins, _ := p.Decode()
		fn.Params = append(fn.Params, ins)
	}
	for _, eb := range t.Blocks {
		b := &spirv.Block{Label: eb.Label}
		for _, p := range eb.Phis {
			ins, _ := p.Decode()
			b.Phis = append(b.Phis, ins)
		}
		for _, e := range eb.Body {
			ins, _ := e.Decode()
			b.Body = append(b.Body, ins)
		}
		if eb.Merge != nil {
			ins, _ := eb.Merge.Decode()
			b.Merge = ins
		}
		term, _ := eb.Term.Decode()
		b.Term = term
		fn.Blocks = append(fn.Blocks, b)
	}
	c.Mod.Functions = append(c.Mod.Functions, fn)
	if t.LiveSafe {
		c.Facts.MarkLiveSafe(fn.ID())
	}
}

// callees returns the set of functions transitively called from fn.
func callees(m *spirv.Module, fn *spirv.Function) map[spirv.ID]bool {
	out := make(map[spirv.ID]bool)
	var visit func(f *spirv.Function)
	visit = func(f *spirv.Function) {
		for _, b := range f.Blocks {
			for _, ins := range b.Body {
				if ins.Op != spirv.OpFunctionCall {
					continue
				}
				callee := ins.IDOperand(0)
				if out[callee] {
					continue
				}
				out[callee] = true
				if cf := m.Function(callee); cf != nil {
					visit(cf)
				}
			}
		}
	}
	visit(fn)
	return out
}

// hasLoopTransitively reports whether fn or anything it calls contains a
// loop construct.
func hasLoopTransitively(m *spirv.Module, fn *spirv.Function) bool {
	check := func(f *spirv.Function) bool {
		for _, b := range f.Blocks {
			if b.Merge != nil && b.Merge.Op == spirv.OpLoopMerge {
				return true
			}
		}
		return false
	}
	if check(fn) {
		return true
	}
	for id := range callees(m, fn) {
		if cf := m.Function(id); cf != nil && check(cf) {
			return true
		}
	}
	return false
}

// insideLoop reports whether block lies inside some loop construct of fn:
// a loop header dominates it and the loop's merge block does not.
func insideLoop(fn *spirv.Function, block *spirv.Block) bool {
	dom := cfa.Dominators(cfa.Build(fn))
	for _, b := range fn.Blocks {
		if b.Merge == nil || b.Merge.Op != spirv.OpLoopMerge {
			continue
		}
		mergeBlk := spirv.ID(b.Merge.Operands[0])
		if dom.Dominates(b.Label, block.Label) && !dom.Dominates(mergeBlk, block.Label) {
			return true
		}
	}
	return false
}

// FunctionCall inserts a call. A LiveSafe function can be called from
// anywhere, as long as IrrelevantPointee pointers are passed for pointer
// parameters; a non-LiveSafe function can only be called from a dead block
// (Section 3.2). Recursion is never introduced.
type FunctionCall struct {
	Fresh  spirv.ID   `json:"fresh"`
	Callee spirv.ID   `json:"callee"`
	Args   []spirv.ID `json:"args,omitempty"`
	Block  spirv.ID   `json:"block"`
	Before spirv.ID   `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *FunctionCall) Type() string { return TypeFunctionCall }

// Precondition as documented on the type.
func (t *FunctionCall) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	callee := c.Mod.Function(t.Callee)
	if callee == nil {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	if !c.Facts.IsLiveSafe(t.Callee) && !c.Facts.IsDeadBlock(t.Block) {
		return false
	}
	// No recursion: the callee must not (transitively) call the caller, nor
	// be the caller itself.
	if t.Callee == pt.fn.ID() || callees(c.Mod, callee)[pt.fn.ID()] {
		return false
	}
	// Bound dynamic cost: a callee that (transitively) contains a loop may
	// not be called from inside a loop of the caller. Without this rule,
	// repeated call insertion nests bounded loops multiplicatively and the
	// variant's runtime explodes even though it terminates.
	if hasLoopTransitively(c.Mod, callee) && insideLoop(pt.fn, pt.block) {
		return false
	}
	_, params, ok := c.Mod.FunctionTypeInfo(callee.TypeID())
	if !ok || len(params) != len(t.Args) {
		return false
	}
	for i, arg := range t.Args {
		argType, ok := c.valueType(arg)
		if !ok || argType != params[i] {
			return false
		}
		if !c.AvailableAt(arg, pt.fn, pt.block, pt.index) {
			return false
		}
		if _, _, isPtr := c.Mod.PointerInfo(params[i]); isPtr {
			// Pointer arguments must be irrelevant-pointee (live-safe call)
			// or the call must sit in a dead block.
			if !c.Facts.IsIrrelevantPointee(arg) && !c.Facts.IsDeadBlock(t.Block) {
				return false
			}
		}
	}
	return true
}

// Apply inserts the call; a non-void result is marked Irrelevant because
// nothing meaningful consumes it.
func (t *FunctionCall) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	callee := c.Mod.Function(t.Callee)
	ops := []uint32{uint32(t.Callee)}
	for _, a := range t.Args {
		ops = append(ops, uint32(a))
	}
	InsertBefore(pt.block, pt.index, spirv.NewInstr(spirv.OpFunctionCall, callee.ReturnType(), t.Fresh, ops...))
	if c.Mod.TypeOp(callee.ReturnType()) != spirv.OpTypeVoid {
		c.Facts.MarkIrrelevant(t.Fresh)
	}
}

// InlineFunction replaces a call to a single-block function with the
// callee's body. The instance carries an explicit mapping from callee-
// internal ids to fresh ids, following the independence principle of
// Section 3.3: the mapping stays valid during reduction even when earlier
// transformations that changed the callee are removed.
type InlineFunction struct {
	Call  spirv.ID              `json:"call"`
	IDMap map[spirv.ID]spirv.ID `json:"idMap,omitempty"`
}

// Type implements Transformation.
func (t *InlineFunction) Type() string { return TypeInlineFunction }

// Precondition: the call exists, the callee has exactly one block ending in
// OpReturn/OpReturnValue, and the id map covers the callee's result ids with
// fresh, distinct targets.
func (t *InlineFunction) Precondition(c *Context) bool {
	loc := c.FindInstruction(t.Call)
	if loc == nil || loc.Index < 0 || loc.Instr.Op != spirv.OpFunctionCall {
		return false
	}
	callee := c.Mod.Function(loc.Instr.IDOperand(0))
	if callee == nil || len(callee.Blocks) != 1 {
		return false
	}
	body := callee.Blocks[0]
	if len(body.Phis) != 0 {
		return false
	}
	if body.Term.Op != spirv.OpReturn && body.Term.Op != spirv.OpReturnValue {
		return false
	}
	seen := make(map[spirv.ID]bool)
	for _, ins := range body.Body {
		if ins.Result == 0 {
			continue
		}
		fresh, ok := t.IDMap[ins.Result]
		if !ok || seen[fresh] || !c.IsFreshID(fresh) {
			return false
		}
		seen[fresh] = true
	}
	return true
}

// Apply splices the callee's instructions in place of the call.
func (t *InlineFunction) Apply(c *Context) {
	loc := c.FindInstruction(t.Call)
	callee := c.Mod.Function(loc.Instr.IDOperand(0))
	body := callee.Blocks[0]

	// Parameter ids map to the call's arguments; internal ids map through
	// IDMap; everything else is untouched.
	remap := make(map[spirv.ID]spirv.ID, len(callee.Params)+len(t.IDMap))
	for i, p := range callee.Params {
		remap[p.Result] = loc.Instr.IDOperand(i + 1)
	}
	for oldID, fresh := range t.IDMap {
		remap[oldID] = fresh
		c.ClaimID(fresh)
	}
	apply := func(id spirv.ID) spirv.ID {
		if n, ok := remap[id]; ok {
			return n
		}
		return id
	}

	spliced := make([]*spirv.Instruction, 0, len(body.Body)+1)
	for _, ins := range body.Body {
		cl := ins.Clone()
		cl.MapAllIDs(apply)
		spliced = append(spliced, cl)
	}
	if body.Term.Op == spirv.OpReturnValue {
		retVal := apply(body.Term.IDOperand(0))
		spliced = append(spliced,
			spirv.NewInstr(spirv.OpCopyObject, loc.Instr.Type, loc.Instr.Result, uint32(retVal)))
	}
	blk := loc.Block
	blk.Body = append(blk.Body[:loc.Index:loc.Index], append(spliced, blk.Body[loc.Index+1:]...)...)
}

// SetFunctionControl changes a function's control mask (None, Inline,
// DontInline). Semantically inert, but it steers real compilers' inlining
// decisions — the transformation behind the one-instruction SwiftShader
// delta of Figure 3.
type SetFunctionControl struct {
	Function spirv.ID `json:"function"`
	Control  uint32   `json:"control"`
}

// Type implements Transformation.
func (t *SetFunctionControl) Type() string { return TypeSetFunctionControl }

// Precondition: the function exists, the mask is a supported value and
// differs from the current one.
func (t *SetFunctionControl) Precondition(c *Context) bool {
	fn := c.Mod.Function(t.Function)
	if fn == nil || fn.Control() == t.Control {
		return false
	}
	switch t.Control {
	case spirv.FunctionControlNone, spirv.FunctionControlInline, spirv.FunctionControlDontInline:
		return true
	}
	return false
}

// Apply sets the mask.
func (t *SetFunctionControl) Apply(c *Context) {
	c.Mod.Function(t.Function).SetControl(t.Control)
}

// AddParameter appends a parameter to a non-entry function and supplies a
// value at every call site. The values provided do not matter — the callee
// never reads the fresh parameter — so the parameter id gets an Irrelevant
// fact, enabling later ReplaceIrrelevantId enrichment (Section 3.3).
type AddParameter struct {
	Function   spirv.ID              `json:"function"`
	FreshParam spirv.ID              `json:"freshParam"`
	ParamType  spirv.ID              `json:"paramType"`
	NewFnType  spirv.ID              `json:"newFnType"`
	CallArgs   map[spirv.ID]spirv.ID `json:"callArgs,omitempty"` // call result id → argument id
}

// Type implements Transformation.
func (t *AddParameter) Type() string { return TypeAddParameter }

// Precondition: non-entry function; fresh param id; NewFnType is an existing
// function type equal to the old signature plus ParamType; every call site
// has a matching available argument.
func (t *AddParameter) Precondition(c *Context) bool {
	fn := c.Mod.Function(t.Function)
	if fn == nil || c.EntryPointIDs()[t.Function] || !c.IsFreshID(t.FreshParam) {
		return false
	}
	if _, _, isPtr := c.Mod.PointerInfo(t.ParamType); isPtr {
		return false // pointer parameters would need IrrelevantPointee plumbing
	}
	oldRet, oldParams, ok := c.Mod.FunctionTypeInfo(fn.TypeID())
	if !ok {
		return false
	}
	newRet, newParams, ok := c.Mod.FunctionTypeInfo(t.NewFnType)
	if !ok || newRet != oldRet || len(newParams) != len(oldParams)+1 {
		return false
	}
	for i, p := range oldParams {
		if newParams[i] != p {
			return false
		}
	}
	if newParams[len(oldParams)] != t.ParamType {
		return false
	}
	// Every call site must be covered with an available argument.
	for _, cf := range c.Mod.Functions {
		for _, b := range cf.Blocks {
			for i, ins := range b.Body {
				if ins.Op != spirv.OpFunctionCall || ins.IDOperand(0) != t.Function {
					continue
				}
				arg, ok := t.CallArgs[ins.Result]
				if !ok {
					return false
				}
				argType, ok := c.valueType(arg)
				if !ok || argType != t.ParamType {
					return false
				}
				if !c.AvailableAt(arg, cf, b, i) {
					return false
				}
			}
		}
	}
	return true
}

// Apply appends the parameter, retypes the function, extends the calls and
// records the Irrelevant fact.
func (t *AddParameter) Apply(c *Context) {
	c.ClaimID(t.FreshParam)
	fn := c.Mod.Function(t.Function)
	fn.Params = append(fn.Params, spirv.NewInstr(spirv.OpFunctionParameter, t.ParamType, t.FreshParam))
	fn.Def.Operands[1] = uint32(t.NewFnType)
	for _, cf := range c.Mod.Functions {
		for _, b := range cf.Blocks {
			for _, ins := range b.Body {
				if ins.Op == spirv.OpFunctionCall && ins.IDOperand(0) == t.Function {
					ins.Operands = append(ins.Operands, uint32(t.CallArgs[ins.Result]))
				}
			}
		}
	}
	c.Facts.MarkIrrelevant(t.FreshParam)
}

// PropagateInstructionUp moves the first body instruction of a block into
// each of its predecessors, selecting between the copies with a fresh ϕ that
// reuses the original result id. Operands that are ϕs of the same block are
// rewritten to the per-predecessor incoming value — exactly the Figure 8a
// rewrite that exposed the Mesa last-loop-iteration bug.
type PropagateInstructionUp struct {
	Instr    spirv.ID              `json:"instr"`
	FreshIDs map[spirv.ID]spirv.ID `json:"freshIds"` // predecessor label → fresh id
}

// Type implements Transformation.
func (t *PropagateInstructionUp) Type() string { return TypePropagateInstructionUp }

// movable reports whether the opcode may be recomputed at the end of each
// predecessor: pure value instructions plus OpLoad (nothing executes between
// a predecessor's terminator and the block's first body instruction).
func movable(op spirv.Opcode) bool {
	switch op {
	case spirv.OpStore, spirv.OpFunctionCall, spirv.OpVariable, spirv.OpAccessChain, spirv.OpPhi:
		return false
	}
	sig, ok := spirv.Sig(op)
	return ok && sig.HasResult && sig.HasType && !op.IsConstant() && op != spirv.OpUndef && op != spirv.OpFunctionParameter && op != spirv.OpFunction
}

// Precondition as documented on the type; every operand must be available at
// the end of every predecessor (after per-predecessor ϕ substitution).
func (t *PropagateInstructionUp) Precondition(c *Context) bool {
	loc := c.FindInstruction(t.Instr)
	if loc == nil || loc.Index != 0 || !movable(loc.Instr.Op) {
		return false
	}
	g := cfa.Build(loc.Fn)
	preds := uniqueIDs(g.Preds[loc.Block.Label])
	if len(preds) == 0 {
		return false
	}
	seen := make(map[spirv.ID]bool)
	for _, p := range preds {
		fresh, ok := t.FreshIDs[p]
		if !ok || seen[fresh] || !c.IsFreshID(fresh) {
			return false
		}
		seen[fresh] = true
	}
	phiValueFor := func(id spirv.ID, pred spirv.ID) (spirv.ID, bool) {
		for _, phi := range loc.Block.Phis {
			if phi.Result != id {
				continue
			}
			for i := 0; i+1 < len(phi.Operands); i += 2 {
				if spirv.ID(phi.Operands[i+1]) == pred {
					return spirv.ID(phi.Operands[i]), true
				}
			}
			return 0, false
		}
		return id, true // not a ϕ of this block: used as-is
	}
	info := cfa.Analyze(c.Mod, loc.Fn)
	for _, p := range preds {
		pb := loc.Fn.Block(p)
		if pb == nil {
			return false
		}
		endPos := len(pb.Phis) + len(pb.Body)
		ok := true
		loc.Instr.Uses(func(id spirv.ID) {
			if !ok || id == loc.Instr.Type {
				return
			}
			v, found := phiValueFor(id, p)
			if !found {
				ok = false
				return
			}
			if !info.AvailableAt(v, p, endPos) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// Apply performs the propagation.
func (t *PropagateInstructionUp) Apply(c *Context) {
	loc := c.FindInstruction(t.Instr)
	g := cfa.Build(loc.Fn)
	preds := uniqueIDs(g.Preds[loc.Block.Label])
	phiValueFor := func(id spirv.ID, pred spirv.ID) spirv.ID {
		for _, phi := range loc.Block.Phis {
			if phi.Result != id {
				continue
			}
			for i := 0; i+1 < len(phi.Operands); i += 2 {
				if spirv.ID(phi.Operands[i+1]) == pred {
					return spirv.ID(phi.Operands[i])
				}
			}
		}
		return id
	}
	var phiOps []uint32
	for _, p := range preds {
		fresh := t.FreshIDs[p]
		c.ClaimID(fresh)
		pb := loc.Fn.Block(p)
		cl := loc.Instr.Clone()
		cl.Result = fresh
		cl.MapUses(func(id spirv.ID) spirv.ID {
			if id == cl.Type {
				return id
			}
			return phiValueFor(id, p)
		})
		pb.Body = append(pb.Body, cl)
		phiOps = append(phiOps, uint32(fresh), uint32(p))
	}
	RemoveBodyAt(loc.Block, 0)
	loc.Block.Phis = append(loc.Block.Phis,
		spirv.NewInstr(spirv.OpPhi, loc.Instr.Type, loc.Instr.Result, phiOps...))
}

// uniqueIDs removes duplicates preserving order.
func uniqueIDs(ids []spirv.ID) []spirv.ID {
	seen := make(map[spirv.ID]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func init() {
	register(TypeAddFunction, func() Transformation { return &AddFunction{} })
	register(TypeFunctionCall, func() Transformation { return &FunctionCall{} })
	register(TypeInlineFunction, func() Transformation { return &InlineFunction{} })
	register(TypeSetFunctionControl, func() Transformation { return &SetFunctionControl{} })
	register(TypeAddParameter, func() Transformation { return &AddParameter{} })
	register(TypePropagateInstructionUp, func() Transformation { return &PropagateInstructionUp{} })
}
