package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

func TestSetFunctionControlTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Caller())
	helper := c.Mod.Functions[0]
	tr := &fuzz.SetFunctionControl{Function: helper.ID(), Control: spirv.FunctionControlDontInline}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if helper.Control() != spirv.FunctionControlDontInline {
		t.Fatal("control not set")
	}
	// Setting the same value again, a bogus mask, or a missing function.
	rejected(t, c, &fuzz.SetFunctionControl{Function: helper.ID(), Control: spirv.FunctionControlDontInline})
	rejected(t, c, &fuzz.SetFunctionControl{Function: helper.ID(), Control: 77})
	rejected(t, c, &fuzz.SetFunctionControl{Function: 9999, Control: 0})
}

func TestInlineFunctionTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Caller())
	m := c.Mod
	fn := m.EntryPointFunction()
	var call *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				call = ins
			}
		}
	}
	callee := m.Function(call.IDOperand(0))
	idMap := map[spirv.ID]spirv.ID{}
	next := m.Bound
	for _, ins := range callee.Blocks[0].Body {
		if ins.Result != 0 {
			idMap[ins.Result] = next
			next++
		}
	}
	tr := &fuzz.InlineFunction{Call: call.Result, IDMap: idMap}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	// The call is gone; the result id survives as a CopyObject.
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				t.Fatal("call not removed")
			}
		}
	}
	if loc := c.FindInstruction(call.Result); loc == nil || loc.Instr.Op != spirv.OpCopyObject {
		t.Fatal("call result must survive as a copy of the return value")
	}
	// Re-inlining the same call id is rejected (it no longer names a call).
	rejected(t, c, &fuzz.InlineFunction{Call: call.Result, IDMap: idMap})
}

func TestInlineFunctionRejectsIncompleteIDMap(t *testing.T) {
	c, _ := baseline(t, testmod.Caller())
	m := c.Mod
	fn := m.EntryPointFunction()
	var call *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				call = ins
			}
		}
	}
	rejected(t, c, &fuzz.InlineFunction{Call: call.Result, IDMap: map[spirv.ID]spirv.ID{}})
	// Colliding fresh ids are rejected too.
	callee := m.Function(call.IDOperand(0))
	bad := map[spirv.ID]spirv.ID{}
	for _, ins := range callee.Blocks[0].Body {
		if ins.Result != 0 {
			bad[ins.Result] = m.Bound // everyone maps to the same id
		}
	}
	if len(bad) > 1 {
		rejected(t, c, &fuzz.InlineFunction{Call: call.Result, IDMap: bad})
	}
}

func TestFunctionCallTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry()

	// Donate a live-safe function first.
	donors := corpus.Donors()
	var donated []fuzz.Transformation
	for _, d := range donors {
		donated = fuzz.Donate(c, d, d.Functions[0], true)
		if donated != nil {
			break
		}
	}
	if donated == nil {
		t.Fatal("no donatable function")
	}
	for _, tr := range donated {
		applyOK(t, c, tr)
	}
	callee := m.Functions[len(m.Functions)-1]
	if !c.Facts.IsLiveSafe(callee.ID()) {
		t.Fatal("donated function must be LiveSafe")
	}
	_, params, _ := m.FunctionTypeInfo(callee.TypeID())
	args := make([]spirv.ID, len(params))
	for i, p := range params {
		switch {
		case m.IsFloatType(p):
			args[i] = m.EnsureConstantFloat(0)
		case m.IsIntType(p):
			args[i] = m.EnsureConstantInt(0)
		case m.IsBoolType(p):
			args[i] = m.EnsureConstantBool(false)
		default:
			t.Skipf("donor parameter type unsupported in this test")
		}
	}
	tr := &fuzz.FunctionCall{Fresh: m.Bound, Callee: callee.ID(), Args: args, Block: entry.Label, Before: 0}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if m.TypeOp(callee.ReturnType()) != spirv.OpTypeVoid && !c.Facts.IsIrrelevant(tr.Fresh) {
		t.Fatal("live-safe call result must be Irrelevant")
	}

	// Calling a non-LiveSafe function from a live block is rejected.
	c2, _ := baseline(t, testmod.Caller())
	m2 := c2.Mod
	helper := m2.Functions[0]
	zeroF := m2.EnsureConstantFloat(0)
	rejected(t, c2, &fuzz.FunctionCall{
		Fresh: m2.Bound, Callee: helper.ID(), Args: []spirv.ID{zeroF},
		Block: m2.EntryPointFunction().Entry().Label,
	})
	// Recursion is rejected: a function calling itself.
	rejected(t, c2, &fuzz.FunctionCall{
		Fresh: m2.Bound, Callee: helper.ID(), Args: []spirv.ID{helper.Params[0].Result},
		Block: helper.Blocks[0].Label,
	})
	// Arity mismatches are rejected.
	c.Facts.MarkLiveSafe(callee.ID())
	rejected(t, c, &fuzz.FunctionCall{Fresh: m.Bound, Callee: callee.ID(), Args: nil, Block: entry.Label})
}

func TestAddParameterTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Caller())
	m := c.Mod
	helper := m.Functions[0]
	f32 := m.EnsureTypeFloat(32)
	intT := m.EnsureTypeInt(32, true)
	newType := m.EnsureTypeFunction(f32, f32, intT)
	zero := m.EnsureConstantInt(0)
	var call *spirv.Instruction
	for _, b := range m.EntryPointFunction().Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				call = ins
			}
		}
	}
	tr := &fuzz.AddParameter{
		Function:   helper.ID(),
		FreshParam: m.Bound,
		ParamType:  intT,
		NewFnType:  newType,
		CallArgs:   map[spirv.ID]spirv.ID{call.Result: zero},
	}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if len(helper.Params) != 2 || len(call.Operands) != 3 {
		t.Fatal("parameter or call argument not added")
	}
	if !c.Facts.IsIrrelevant(tr.FreshParam) {
		t.Fatal("fresh parameter must be Irrelevant")
	}

	// Entry points cannot gain parameters; missing call args are rejected;
	// pointer parameter types are rejected.
	main := m.EntryPointFunction()
	voidT := m.EnsureTypeVoid()
	mainNew := m.EnsureTypeFunction(voidT, intT)
	rejected(t, c, &fuzz.AddParameter{Function: main.ID(), FreshParam: m.Bound, ParamType: intT, NewFnType: mainNew})
	newType2 := m.EnsureTypeFunction(f32, f32, intT, intT)
	rejected(t, c, &fuzz.AddParameter{Function: helper.ID(), FreshParam: m.Bound, ParamType: intT, NewFnType: newType2, CallArgs: nil})
	ptrT := m.EnsureTypePointer(spirv.StorageFunction, intT)
	newType3 := m.EnsureTypeFunction(f32, f32, intT, ptrT)
	rejected(t, c, &fuzz.AddParameter{Function: helper.ID(), FreshParam: m.Bound, ParamType: ptrT, NewFnType: newType3,
		CallArgs: map[spirv.ID]spirv.ID{call.Result: zero}})
}

func TestPropagateInstructionUpTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Loop())
	m := c.Mod
	fn := m.EntryPointFunction()
	header, check := fn.Blocks[1], fn.Blocks[2]
	cmp := check.Body[0] // SLessThan over the ϕ

	tr := &fuzz.PropagateInstructionUp{
		Instr:    cmp.Result,
		FreshIDs: map[spirv.ID]spirv.ID{header.Label: m.Bound},
	}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	// The comparison is now a ϕ in the check block, and the header computes
	// the hoisted copy.
	if loc := c.FindInstruction(cmp.Result); loc == nil || loc.Instr.Op != spirv.OpPhi {
		t.Fatal("propagated instruction must become a ϕ with the same id")
	}
	foundHoisted := false
	for _, ins := range header.Body {
		if ins.Op == spirv.OpSLessThan {
			foundHoisted = true
		}
	}
	if !foundHoisted {
		t.Fatal("hoisted copy missing from predecessor")
	}

	// A second application (Figure 8a applies it repeatedly): the ϕ itself
	// cannot be propagated (ϕs are not movable), but the hoisted comparison
	// in the header — not at body index 0 — is rejected too.
	rejected(t, c, &fuzz.PropagateInstructionUp{Instr: cmp.Result, FreshIDs: map[spirv.ID]spirv.ID{header.Label: m.Bound}})

	// Stores and calls are not movable; missing FreshIDs entries rejected.
	c2, _ := baseline(t, testmod.Diamond())
	fn2 := c2.Mod.EntryPointFunction()
	mergeB := fn2.Blocks[len(fn2.Blocks)-1]
	construct := mergeB.Body[0]
	rejected(t, c2, &fuzz.PropagateInstructionUp{Instr: construct.Result, FreshIDs: map[spirv.ID]spirv.ID{}})
	ok := &fuzz.PropagateInstructionUp{
		Instr: construct.Result,
		FreshIDs: map[spirv.ID]spirv.ID{
			fn2.Blocks[1].Label: c2.Mod.Bound,
			fn2.Blocks[2].Label: c2.Mod.Bound + 1,
		},
	}
	applyOK(t, c2, ok)
	img2, _ := baseline(t, testmod.Diamond())
	_ = img2
	renderEq(t, c2, mustRender(t, testmod.Diamond()))
}

func TestPropagateInstructionUpThroughPhis(t *testing.T) {
	// The Figure 8a mechanics: when the propagated instruction's operand is
	// a ϕ of the *same* block, each hoisted copy uses that ϕ's incoming
	// value for its predecessor. Rebuild the figure's middle CFG by moving
	// the loop's exit comparison into the header (where the induction ϕ
	// lives), then propagate it up into the header's two predecessors.
	c, want := baseline(t, testmod.Loop())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry, header, check := fn.Blocks[0], fn.Blocks[1], fn.Blocks[2]
	iPhi := header.Phis[0]
	cmp := check.Body[0]
	if cmp.IDOperand(0) != iPhi.Result {
		t.Fatalf("expected comparison over the ϕ, got %s", cmp)
	}
	// Move the comparison into the header (it dominates the check block, so
	// this is a valid hand-edit for test setup).
	check.Body = check.Body[1:]
	header.Body = append(header.Body, cmp)

	cont := fn.Blocks[4]
	tr := &fuzz.PropagateInstructionUp{
		Instr: cmp.Result,
		FreshIDs: map[spirv.ID]spirv.ID{
			entry.Label: m.Bound,
			cont.Label:  m.Bound + 1,
		},
	}
	applyOK(t, c, tr)
	renderEq(t, c, want)

	// The entry's hoisted copy compares the ϕ's entry value (the constant
	// 0); the continue block's copy compares iNext — never the ϕ itself.
	entryCopy := entry.Body[len(entry.Body)-1]
	contCopy := cont.Body[len(cont.Body)-1]
	if entryCopy.Op != spirv.OpSLessThan || contCopy.Op != spirv.OpSLessThan {
		t.Fatalf("hoisted copies wrong: %s / %s", entryCopy, contCopy)
	}
	if entryCopy.IDOperand(0) == iPhi.Result || contCopy.IDOperand(0) == iPhi.Result {
		t.Fatal("hoisted copies must use per-predecessor incoming values, not the ϕ")
	}
	if entryCopy.IDOperand(0) == contCopy.IDOperand(0) {
		t.Fatal("the two predecessors receive different incoming values")
	}
	// The original id lives on as a ϕ selecting between the copies.
	if loc := c.FindInstruction(cmp.Result); loc == nil || loc.Instr.Op != spirv.OpPhi {
		t.Fatal("comparison must become a ϕ")
	}
}

func mustRender(t *testing.T, m *spirv.Module) *interp.Image {
	t.Helper()
	_, img := baseline(t, m)
	return img
}
