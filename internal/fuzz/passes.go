package fuzz

import (
	"math/rand"

	"spirvfuzz/internal/spirv"
)

// A Pass sweeps the module looking for opportunities to apply a particular
// combination of transformations, probabilistically deciding which to take
// (Section 3.2). Passes construct candidate transformations and hand them to
// emit, which applies them when their preconditions hold.
type Pass struct {
	Name string
	Run  func(c *Context, rng *rand.Rand, emit emitFn)
}

// emitFn applies a transformation if its precondition holds, recording it in
// the growing sequence. It reports whether the transformation was applied.
type emitFn func(Transformation) bool

func coin(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// blockRef pairs a function with one of its blocks.
type blockRef struct {
	fn *spirv.Function
	b  *spirv.Block
}

func allBlocks(c *Context) []blockRef {
	var out []blockRef
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			out = append(out, blockRef{fn, b})
		}
	}
	return out
}

// randomBefore picks an insertion anchor in b: the result id of a body
// instruction, or 0 for the end of the block.
func randomBefore(rng *rand.Rand, b *spirv.Block) spirv.ID {
	var withResults []spirv.ID
	for _, ins := range b.Body {
		if ins.Result != 0 {
			withResults = append(withResults, ins.Result)
		}
	}
	if len(withResults) == 0 || coin(rng, 0.3) {
		return 0
	}
	return withResults[rng.Intn(len(withResults))]
}

// --- supporting-transformation helpers -------------------------------------

func ensureBoolType(c *Context, emit emitFn) bool {
	if c.Mod.FindTypeBool() != 0 {
		return true
	}
	return emit(&AddTypeBool{Fresh: c.Mod.Bound})
}

func ensureBoolConst(c *Context, emit emitFn, val bool) (spirv.ID, bool) {
	if id, ok := findBoolConst(c.Mod, val); ok {
		return id, true
	}
	if !ensureBoolType(c, emit) {
		return 0, false
	}
	id := c.Mod.Bound
	if !emit(&AddConstantBoolean{Fresh: id, Value: val}) {
		return 0, false
	}
	return id, true
}

func ensureIntType(c *Context, emit emitFn, signed bool) (spirv.ID, bool) {
	if id := c.Mod.FindTypeInt(32, signed); id != 0 {
		return id, true
	}
	id := c.Mod.Bound
	if !emit(&AddTypeInt{Fresh: id, Width: 32, Signed: signed}) {
		return 0, false
	}
	return id, true
}

func ensureScalarConst(c *Context, emit emitFn, typ spirv.ID, word uint32) (spirv.ID, bool) {
	if id, ok := findScalarConst(c.Mod, typ, word); ok {
		return id, true
	}
	id := c.Mod.Bound
	if !emit(&AddConstantScalar{Fresh: id, TypeID: typ, Word: word}) {
		return 0, false
	}
	return id, true
}

// trivialConstantOf returns (emitting supporting transformations if needed)
// a trivial constant of the given scalar/bool type: 0, 0.0 or false — the
// "simple transformations" principle (Section 3.3): calls and parameters get
// boring values first, enriched later by ReplaceIrrelevantId.
func trivialConstantOf(c *Context, emit emitFn, typ spirv.ID) (spirv.ID, bool) {
	switch c.Mod.TypeOp(typ) {
	case spirv.OpTypeBool:
		return ensureBoolConst(c, emit, false)
	case spirv.OpTypeInt, spirv.OpTypeFloat:
		return ensureScalarConst(c, emit, typ, 0)
	}
	return 0, false
}

// candidateValuesAt returns ids likely available at (fn, blk, idx) whose
// types satisfy keep: constants, parameters, values defined earlier in the
// block, and values defined in the entry block (which dominates everything).
// Preconditions re-verify availability, so over-approximation is harmless.
func candidateValuesAt(c *Context, fn *spirv.Function, blk *spirv.Block, idx int, keep func(typ spirv.ID) bool) []spirv.ID {
	var out []spirv.ID
	add := func(id, typ spirv.ID) {
		if typ != 0 && c.Mod.TypeOp(typ) != spirv.OpTypeVoid && keep(typ) {
			out = append(out, id)
		}
	}
	for _, ins := range c.Mod.TypesGlobals {
		if ins.Op.IsConstant() || ins.Op == spirv.OpVariable || ins.Op == spirv.OpUndef {
			add(ins.Result, ins.Type)
		}
	}
	for _, p := range fn.Params {
		add(p.Result, p.Type)
	}
	scan := func(b *spirv.Block, limit int) {
		for _, p := range b.Phis {
			add(p.Result, p.Type)
		}
		for i, ins := range b.Body {
			if limit >= 0 && i >= limit {
				break
			}
			if ins.Result != 0 {
				add(ins.Result, ins.Type)
			}
		}
	}
	if blk != fn.Entry() {
		scan(fn.Entry(), -1)
	}
	scan(blk, idx)
	return out
}

// --- the passes -------------------------------------------------------------

// Pass names, used by the recommendation table.
const (
	PassDonateFunctions         = "DonateFunctions"
	PassAddDeadBlocks           = "AddDeadBlocks"
	PassSplitBlocks             = "SplitBlocks"
	PassCopyObjects             = "CopyObjects"
	PassAddNoOpArithmetic       = "AddNoOpArithmetic"
	PassCompositeSynonyms       = "CompositeSynonyms"
	PassReplaceIdsWithSynonyms  = "ReplaceIdsWithSynonyms"
	PassObfuscateConstants      = "ObfuscateConstants"
	PassPermuteBlocks           = "PermuteBlocks"
	PassReplaceBranchesWithKill = "ReplaceBranchesWithKill"
	PassWrapRegions             = "WrapRegions"
	PassAddFunctionCalls        = "AddFunctionCalls"
	PassInlineFunctions         = "InlineFunctions"
	PassSetFunctionControls     = "SetFunctionControls"
	PassAddParameters           = "AddParameters"
	PassPropagateInstructionsUp = "PropagateInstructionsUp"
	PassSwapCommutableOperands  = "SwapCommutableOperands"
	PassAddLoadsStores          = "AddLoadsStores"
	PassScaleUniforms           = "ScaleUniforms"
)

// Passes returns the full fuzzer pass list. donors may be nil.
func Passes(donors []*spirv.Module) []Pass {
	return []Pass{
		{PassDonateFunctions, func(c *Context, rng *rand.Rand, emit emitFn) {
			if len(donors) == 0 {
				return
			}
			donor := donors[rng.Intn(len(donors))]
			if len(donor.Functions) == 0 {
				return
			}
			fn := donor.Functions[rng.Intn(len(donor.Functions))]
			for _, t := range donate(c, donor, fn, true, rng) {
				if !emit(t) {
					return // a failed supporting transformation poisons the rest
				}
			}
		}},

		{PassAddDeadBlocks, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if ref.b.Merge != nil || ref.b.Term.Op != spirv.OpBranch || !coin(rng, 0.3) {
					continue
				}
				trueC, ok := ensureBoolConst(c, emit, true)
				if !ok {
					return
				}
				emit(&AddDeadBlock{Fresh: c.Mod.Bound, Block: ref.b.Label, TrueConst: trueC})
			}
		}},

		{PassSplitBlocks, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if ref.b.Merge != nil || len(ref.b.Body) == 0 || !coin(rng, 0.25) {
					continue
				}
				ins := ref.b.Body[rng.Intn(len(ref.b.Body))]
				if ins.Result == 0 {
					continue
				}
				emit(&SplitBlock{Anchor: ins.Result, Fresh: c.Mod.Bound})
			}
		}},

		{PassCopyObjects, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if !coin(rng, 0.3) {
					continue
				}
				before := randomBefore(rng, ref.b)
				idx := len(ref.b.Body)
				if before != 0 {
					idx = ref.b.FindBody(before)
				}
				cands := candidateValuesAt(c, ref.fn, ref.b, idx, func(spirv.ID) bool { return true })
				if len(cands) == 0 {
					continue
				}
				emit(&CopyObject{
					Fresh:  c.Mod.Bound,
					Source: cands[rng.Intn(len(cands))],
					Block:  ref.b.Label,
					Before: before,
				})
			}
		}},

		{PassAddNoOpArithmetic, func(c *Context, rng *rand.Rand, emit emitFn) {
			ops := []string{"OpIAdd", "OpISub", "OpIMul", "OpBitwiseOr", "OpBitwiseAnd", "OpBitwiseXor"}
			for _, ref := range allBlocks(c) {
				if !coin(rng, 0.3) {
					continue
				}
				before := randomBefore(rng, ref.b)
				idx := len(ref.b.Body)
				if before != 0 {
					idx = ref.b.FindBody(before)
				}
				cands := candidateValuesAt(c, ref.fn, ref.b, idx, c.Mod.IsIntType)
				if len(cands) == 0 {
					continue
				}
				src := cands[rng.Intn(len(cands))]
				opName := ops[rng.Intn(len(ops))]
				typ, _ := c.valueType(src)
				var neutral spirv.ID
				t := &AddNoOpArithmetic{Opcode: opName, Source: src, Block: ref.b.Label, Before: before}
				if word, needed := t.neutralWord(); needed {
					var ok bool
					if neutral, ok = ensureScalarConst(c, emit, typ, word); !ok {
						continue
					}
				}
				t.Neutral = neutral
				t.Fresh = c.Mod.Bound
				emit(t)
			}
		}},

		{PassCompositeSynonyms, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if !coin(rng, 0.3) {
					continue
				}
				before := randomBefore(rng, ref.b)
				idx := len(ref.b.Body)
				if before != 0 {
					idx = ref.b.FindBody(before)
				}
				// Extract from an available composite...
				comps := candidateValuesAt(c, ref.fn, ref.b, idx, func(t spirv.ID) bool {
					_, ok := c.Mod.CompositeMemberCount(t)
					return ok
				})
				if len(comps) > 0 && coin(rng, 0.5) {
					comp := comps[rng.Intn(len(comps))]
					typ, _ := c.valueType(comp)
					if n, ok := c.Mod.CompositeMemberCount(typ); ok && n > 0 {
						emit(&CompositeExtract{
							Fresh:     c.Mod.Bound,
							Composite: comp,
							Index:     uint32(rng.Intn(n)),
							Block:     ref.b.Label,
							Before:    before,
						})
					}
					continue
				}
				// ...or construct a vector from available scalars.
				scalars := candidateValuesAt(c, ref.fn, ref.b, idx, c.Mod.IsFloatType)
				if len(scalars) == 0 {
					continue
				}
				elemType, _ := c.valueType(scalars[rng.Intn(len(scalars))])
				n := 2 + rng.Intn(3)
				vecType := c.Mod.FindTypeVector(elemType, n)
				if vecType == 0 {
					id := c.Mod.Bound
					if !emit(&AddTypeVector{Fresh: id, Elem: elemType, N: n}) {
						continue
					}
					vecType = id
				}
				members := make([]spirv.ID, n)
				usable := candidateValuesAt(c, ref.fn, ref.b, idx, func(t spirv.ID) bool { return t == elemType })
				if len(usable) == 0 {
					continue
				}
				for i := range members {
					members[i] = usable[rng.Intn(len(usable))]
				}
				emit(&CompositeConstruct{
					Fresh:   c.Mod.Bound,
					TypeID:  vecType,
					Members: members,
					Block:   ref.b.Label,
					Before:  before,
				})
			}
		}},

		{PassReplaceIdsWithSynonyms, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				for _, ins := range ref.b.Body {
					if ins.Result == 0 || !coin(rng, 0.4) {
						continue
					}
					idxs := ins.IDOperandIndices()
					if len(idxs) == 0 {
						continue
					}
					oi := idxs[rng.Intn(len(idxs))]
					old := spirv.ID(ins.Operands[oi])
					syns := c.Facts.WholeSynonymsOf(old)
					if len(syns) == 0 {
						continue
					}
					emit(&ReplaceIdWithSynonym{
						User:         ins.Result,
						OperandIndex: oi,
						Synonym:      syns[rng.Intn(len(syns))],
					})
				}
			}
		}},

		{PassObfuscateConstants, func(c *Context, rng *rand.Rand, emit emitFn) {
			uniforms := uniformVars(c)
			if len(uniforms) == 0 {
				return
			}
			for _, ref := range allBlocks(c) {
				for _, ins := range ref.b.Body {
					if ins.Result == 0 || !coin(rng, 0.4) {
						continue
					}
					for _, oi := range ins.IDOperandIndices() {
						op := spirv.ID(ins.Operands[oi])
						def := c.Mod.Def(op)
						if def == nil || !def.Op.IsConstant() {
							continue
						}
						uv := uniforms[rng.Intn(len(uniforms))]
						emit(&ReplaceConstantWithUniform{
							User:         ins.Result,
							OperandIndex: oi,
							UniformVar:   uv,
							FreshLoad:    c.Mod.Bound,
						})
						break
					}
				}
			}
		}},

		{PassPermuteBlocks, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, fn := range c.Mod.Functions {
				for sweep := 0; sweep < 3; sweep++ {
					for _, b := range fn.Blocks {
						if coin(rng, 0.25) {
							emit(&MoveBlockDown{Block: b.Label})
						}
					}
				}
			}
		}},

		{PassReplaceBranchesWithKill, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, blk := range c.Facts.DeadBlocks() {
				if coin(rng, 0.5) {
					emit(&ReplaceBranchWithKill{Block: blk})
				}
			}
		}},

		{PassWrapRegions, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if ref.b.Merge != nil || ref.b.Term.Op != spirv.OpBranch || !coin(rng, 0.2) {
					continue
				}
				cond, ok := ensureBoolConst(c, emit, coin(rng, 0.5))
				if !ok {
					return
				}
				emit(&WrapRegionInSelection{
					Block:      ref.b.Label,
					FreshInner: c.Mod.Bound,
					FreshMerge: c.Mod.Bound + 1,
					CondConst:  cond,
				})
			}
		}},

		{PassAddFunctionCalls, func(c *Context, rng *rand.Rand, emit emitFn) {
			var liveSafe []*spirv.Function
			for _, fn := range c.Mod.Functions {
				if c.Facts.IsLiveSafe(fn.ID()) {
					liveSafe = append(liveSafe, fn)
				}
			}
			for _, ref := range allBlocks(c) {
				if !coin(rng, 0.25) {
					continue
				}
				var callee *spirv.Function
				if len(liveSafe) > 0 {
					callee = liveSafe[rng.Intn(len(liveSafe))]
				} else if c.Facts.IsDeadBlock(ref.b.Label) && len(c.Mod.Functions) > 1 {
					callee = c.Mod.Functions[rng.Intn(len(c.Mod.Functions))]
				}
				if callee == nil || callee.ID() == ref.fn.ID() {
					continue
				}
				_, params, ok := c.Mod.FunctionTypeInfo(callee.TypeID())
				if !ok {
					continue
				}
				args := make([]spirv.ID, 0, len(params))
				good := true
				for _, p := range params {
					if _, _, isPtr := c.Mod.PointerInfo(p); isPtr {
						good = false // pointer params need IrrelevantPointee plumbing
						break
					}
					arg, ok := trivialConstantOf(c, emit, p)
					if !ok {
						good = false
						break
					}
					args = append(args, arg)
				}
				if !good {
					continue
				}
				emit(&FunctionCall{
					Fresh:  c.Mod.Bound,
					Callee: callee.ID(),
					Args:   args,
					Block:  ref.b.Label,
					Before: randomBefore(rng, ref.b),
				})
			}
		}},

		{PassInlineFunctions, func(c *Context, rng *rand.Rand, emit emitFn) {
			type callSite struct{ call spirv.ID }
			var sites []callSite
			for _, ref := range allBlocks(c) {
				for _, ins := range ref.b.Body {
					if ins.Op == spirv.OpFunctionCall {
						sites = append(sites, callSite{ins.Result})
					}
				}
			}
			for _, s := range sites {
				if !coin(rng, 0.4) {
					continue
				}
				loc := c.FindInstruction(s.call)
				if loc == nil {
					continue
				}
				callee := c.Mod.Function(loc.Instr.IDOperand(0))
				if callee == nil || len(callee.Blocks) != 1 {
					continue
				}
				idMap := make(map[spirv.ID]spirv.ID)
				next := c.Mod.Bound
				for _, ins := range callee.Blocks[0].Body {
					if ins.Result != 0 {
						idMap[ins.Result] = next
						next++
					}
				}
				emit(&InlineFunction{Call: s.call, IDMap: idMap})
			}
		}},

		{PassSetFunctionControls, func(c *Context, rng *rand.Rand, emit emitFn) {
			masks := []uint32{spirv.FunctionControlNone, spirv.FunctionControlInline, spirv.FunctionControlDontInline}
			for _, fn := range c.Mod.Functions {
				if coin(rng, 0.3) {
					emit(&SetFunctionControl{Function: fn.ID(), Control: masks[rng.Intn(len(masks))]})
				}
			}
		}},

		{PassAddParameters, func(c *Context, rng *rand.Rand, emit emitFn) {
			entries := c.EntryPointIDs()
			for _, fn := range c.Mod.Functions {
				if entries[fn.ID()] || !coin(rng, 0.3) {
					continue
				}
				intType, ok := ensureIntType(c, emit, true)
				if !ok {
					return
				}
				ret, params, ok := c.Mod.FunctionTypeInfo(fn.TypeID())
				if !ok {
					continue
				}
				newParams := append(append([]spirv.ID{}, params...), intType)
				newFnType := c.Mod.FindTypeFunction(ret, newParams...)
				if newFnType == 0 {
					id := c.Mod.Bound
					if !emit(&AddTypeFunction{Fresh: id, Return: ret, Params: newParams}) {
						continue
					}
					newFnType = id
				}
				arg, ok := trivialConstantOf(c, emit, intType)
				if !ok {
					continue
				}
				callArgs := make(map[spirv.ID]spirv.ID)
				for _, cf := range c.Mod.Functions {
					for _, b := range cf.Blocks {
						for _, ins := range b.Body {
							if ins.Op == spirv.OpFunctionCall && ins.IDOperand(0) == fn.ID() {
								callArgs[ins.Result] = arg
							}
						}
					}
				}
				emit(&AddParameter{
					Function:   fn.ID(),
					FreshParam: c.Mod.Bound,
					ParamType:  intType,
					NewFnType:  newFnType,
					CallArgs:   callArgs,
				})
			}
		}},

		{PassPropagateInstructionsUp, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if len(ref.b.Body) == 0 || !coin(rng, 0.25) {
					continue
				}
				ins := ref.b.Body[0]
				if ins.Result == 0 || !movable(ins.Op) {
					continue
				}
				preds := make(map[spirv.ID]spirv.ID)
				next := c.Mod.Bound
				for _, other := range ref.fn.Blocks {
					for _, s := range other.Successors() {
						if s == ref.b.Label {
							if _, ok := preds[other.Label]; !ok {
								preds[other.Label] = next
								next++
							}
						}
					}
				}
				if len(preds) == 0 {
					continue
				}
				emit(&PropagateInstructionUp{Instr: ins.Result, FreshIDs: preds})
			}
		}},

		{PassSwapCommutableOperands, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				for _, ins := range ref.b.Body {
					if ins.Result != 0 && coin(rng, 0.2) {
						emit(&SwapCommutableOperands{Instr: ins.Result})
					}
				}
			}
		}},

		{PassScaleUniforms, passScaleUniformsImpl},

		{PassAddLoadsStores, func(c *Context, rng *rand.Rand, emit emitFn) {
			for _, ref := range allBlocks(c) {
				if !coin(rng, 0.3) {
					continue
				}
				// Ensure an irrelevant local variable exists in this function.
				var ptr spirv.ID
				for _, id := range c.Facts.IrrelevantPointees() {
					if loc := c.FindInstruction(id); loc != nil && loc.Fn == ref.fn {
						ptr = id
						break
					}
				}
				if ptr == 0 {
					intType, ok := ensureIntType(c, emit, true)
					if !ok {
						return
					}
					ptrType := c.Mod.FindTypePointer(spirv.StorageFunction, intType)
					if ptrType == 0 {
						id := c.Mod.Bound
						if !emit(&AddTypePointer{Fresh: id, Storage: spirv.StorageFunction, Pointee: intType}) {
							continue
						}
						ptrType = id
					}
					id := c.Mod.Bound
					if !emit(&AddLocalVariable{Fresh: id, PtrType: ptrType, Function: ref.fn.ID()}) {
						continue
					}
					ptr = id
				}
				before := randomBefore(rng, ref.b)
				idx := len(ref.b.Body)
				if before != 0 {
					idx = ref.b.FindBody(before)
				}
				ptrType, _ := c.valueType(ptr)
				_, pointee, _ := c.Mod.PointerInfo(ptrType)
				if coin(rng, 0.5) {
					vals := candidateValuesAt(c, ref.fn, ref.b, idx, func(t spirv.ID) bool { return t == pointee })
					if len(vals) > 0 {
						emit(&AddStore{
							Pointer: ptr,
							Value:   vals[rng.Intn(len(vals))],
							Block:   ref.b.Label,
							Before:  before,
						})
					}
				} else {
					emit(&AddLoad{Fresh: c.Mod.Bound, Pointer: ptr, Block: ref.b.Label, Before: before})
				}
			}
		}},
	}
}

// passScaleUniformsImpl modifies the module and its input in sync: it
// doubles a float uniform's input value and compensates every load (the
// paper's first future-work item, implemented as an extension).
func passScaleUniformsImpl(c *Context, rng *rand.Rand, emit emitFn) {
	for _, uv := range uniformVars(c) {
		if !coin(rng, 0.3) {
			continue
		}
		def := c.Mod.Def(uv)
		_, pointee, ok := c.Mod.PointerInfo(def.Type)
		if !ok || !c.Mod.IsFloatType(pointee) {
			continue
		}
		half, ok := ensureScalarConst(c, emit, pointee, 0x3F000000 /* 0.5f */)
		if !ok {
			continue
		}
		freshIDs := make(map[spirv.ID]spirv.ID)
		next := c.Mod.Bound
		for _, fn := range c.Mod.Functions {
			for _, b := range fn.Blocks {
				for _, ins := range b.Body {
					if ins.Op == spirv.OpLoad && ins.IDOperand(0) == uv {
						freshIDs[ins.Result] = next
						next++
					}
				}
			}
		}
		emit(&ScaleUniform{UniformVar: uv, HalfConst: half, FreshIDs: freshIDs})
	}
}

// uniformVars returns the ids of uniform variables that have input values.
func uniformVars(c *Context) []spirv.ID {
	var out []spirv.ID
	for _, ins := range c.Mod.TypesGlobals {
		if ins.Op != spirv.OpVariable {
			continue
		}
		if sc := ins.Operands[0]; sc != spirv.StorageUniformConstant && sc != spirv.StorageUniform {
			continue
		}
		if _, ok := c.UniformValue(ins.Result); ok {
			out = append(out, ins.Result)
		}
	}
	return out
}

// Recommendations maps each pass to follow-on passes worth running soon
// after it (Section 3.2): donated functions create call opportunities, calls
// create inlining opportunities, dead blocks enable kills and stores, and
// synonym-creating passes feed the synonym-replacement pass.
var Recommendations = map[string][]string{
	PassDonateFunctions:         {PassAddFunctionCalls},
	PassAddFunctionCalls:        {PassInlineFunctions, PassAddParameters, PassSetFunctionControls},
	PassAddDeadBlocks:           {PassReplaceBranchesWithKill, PassObfuscateConstants, PassAddLoadsStores, PassAddFunctionCalls},
	PassSplitBlocks:             {PassAddDeadBlocks, PassWrapRegions, PassPermuteBlocks},
	PassCopyObjects:             {PassReplaceIdsWithSynonyms},
	PassAddNoOpArithmetic:       {PassReplaceIdsWithSynonyms},
	PassCompositeSynonyms:       {PassReplaceIdsWithSynonyms},
	PassAddParameters:           {PassObfuscateConstants},
	PassPermuteBlocks:           {PassPermuteBlocks},
	PassWrapRegions:             {PassSplitBlocks},
	PassInlineFunctions:         {PassPermuteBlocks, PassSplitBlocks},
	PassPropagateInstructionsUp: {PassPropagateInstructionsUp},
	PassAddLoadsStores:          {PassObfuscateConstants},
	PassScaleUniforms:           {PassObfuscateConstants},
}
