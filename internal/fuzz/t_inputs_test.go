package fuzz_test

import (
	"math"
	"testing"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

// matrixCtx builds a context over the Matrix shader, whose "scale" uniform
// is loaded once.
func matrixCtx(scale float32) (*fuzz.Context, *interp.Image, error) {
	m := testmod.Matrix()
	in := interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(scale)}}
	img, err := interp.Render(m, in)
	return fuzz.NewContext(m, in), img, err
}

func scaleUniformOf(c *fuzz.Context) (*fuzz.ScaleUniform, spirv.ID) {
	m := c.Mod
	var uv spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageUniformConstant {
			uv = ins.Result
		}
	}
	half := m.EnsureConstantFloat(0.5)
	freshIDs := map[spirv.ID]spirv.ID{}
	next := m.Bound
	for _, fn := range m.Functions {
		for _, b := range fn.Blocks {
			for _, ins := range b.Body {
				if ins.Op == spirv.OpLoad && ins.IDOperand(0) == uv {
					freshIDs[ins.Result] = next
					next++
				}
			}
		}
	}
	return &fuzz.ScaleUniform{UniformVar: uv, HalfConst: half, FreshIDs: freshIDs}, uv
}

func TestScaleUniformPreservesSemantics(t *testing.T) {
	c, want, err := matrixCtx(0.75)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := scaleUniformOf(c)
	applyOK(t, c, tr)
	renderEq(t, c, want)
	// The input value doubled...
	if got := c.Inputs.Uniforms["scale"].F; got != 1.5 {
		t.Fatalf("input value = %v, want 1.5", got)
	}
	// ...and every load is compensated by a multiply with 0.5.
	found := false
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			for i, ins := range b.Body {
				if ins.Op == spirv.OpLoad && ins.IDOperand(0) == tr.UniformVar {
					next := b.Body[i+1]
					if next.Op != spirv.OpFMul || next.IDOperand(0) != ins.Result {
						t.Fatalf("load not followed by compensation: %s then %s", ins, next)
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no compensated load found")
	}
}

func TestScaleUniformComposes(t *testing.T) {
	// Applying the transformation twice quadruples the input and compensates
	// twice; semantics are still preserved exactly.
	c, want, err := matrixCtx(0.25)
	if err != nil {
		t.Fatal(err)
	}
	tr1, _ := scaleUniformOf(c)
	applyOK(t, c, tr1)
	tr2, _ := scaleUniformOf(c)
	applyOK(t, c, tr2)
	renderEq(t, c, want)
	if got := c.Inputs.Uniforms["scale"].F; got != 1.0 {
		t.Fatalf("input value = %v, want 1.0", got)
	}
}

func TestScaleUniformPreconditions(t *testing.T) {
	c, _, err := matrixCtx(0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mod
	tr, uv := scaleUniformOf(c)

	// Wrong half constant.
	bad := *tr
	bad.HalfConst = m.EnsureConstantFloat(0.25)
	rejected(t, c, &bad)
	// Incomplete load coverage.
	bad2 := *tr
	bad2.FreshIDs = map[spirv.ID]spirv.ID{}
	rejected(t, c, &bad2)
	// Non-uniform variable.
	bad3 := *tr
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageOutput {
			bad3.UniformVar = ins.Result
		}
	}
	rejected(t, c, &bad3)
	// Infinite doubling.
	c.Inputs.Uniforms["scale"] = interp.FloatVal(math.MaxFloat32)
	rejected(t, c, tr)
	c.Inputs.Uniforms["scale"] = interp.FloatVal(0.5)
	_ = uv
	// The earlier Ensure calls consumed ids, so rebuild with fresh ids: the
	// transformation then applies cleanly.
	good, _ := scaleUniformOf(c)
	applyOK(t, c, good)
}

func TestScaleUniformRejectedWhenLoadHasSynonym(t *testing.T) {
	// If a load participates in a Synonymous fact, scaling would falsify the
	// fact; the precondition rejects it.
	c, _, err := matrixCtx(0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mod
	tr, uv := scaleUniformOf(c)
	var loadID spirv.ID
	for l := range tr.FreshIDs {
		loadID = l
	}
	_ = uv
	loc := c.FindInstruction(loadID)
	cp := &fuzz.CopyObject{Fresh: m.Bound, Source: loadID, Block: loc.Block.Label, Before: 0}
	applyOK(t, c, cp)
	tr2, _ := scaleUniformOf(c) // re-enumerate loads (unchanged set)
	rejected(t, c, tr2)
}

func TestScaleUniformReductionInterplay(t *testing.T) {
	// A ScaleUniform whose loads came from an earlier ObfuscateConstants-
	// style load self-invalidates when that load's transformation is removed
	// during reduction — the map no longer covers the load set exactly.
	c, want, err := matrixCtx(0.5)
	if err != nil {
		t.Fatal(err)
	}
	original := c.Mod.Clone()
	origInputs := c.Inputs.Clone()

	// T1 adds a second load of the uniform; T2 scales (covering both loads).
	m := c.Mod
	_, uv := scaleUniformOf(c)
	entry := m.EntryPointFunction().Entry()
	t1 := &fuzz.AddLoad{Fresh: m.Bound, Pointer: uv, Block: entry.Label, Before: 0}
	applyOK(t, c, t1)
	t2, _ := scaleUniformOf(c)
	applyOK(t, c, t2)
	renderEq(t, c, want)

	seq := []fuzz.Transformation{t1, t2}
	// Dropping T1: T2's map still lists T1's load → precondition fails → T2
	// skipped; the replayed context must equal the original (no half-applied
	// state), and in particular the inputs must be pristine.
	ctx, applied := fuzz.ReplaySubsequenceContext(original, origInputs, seq, []int{1})
	if len(applied) != 0 {
		t.Fatalf("T2 should be skipped without T1; applied %v", applied)
	}
	if got := ctx.Inputs.Uniforms["scale"].F; got != 0.5 {
		t.Fatalf("inputs mutated despite skip: %v", got)
	}
	// Full replay matches the fuzzed context.
	ctx2, applied2 := fuzz.ReplaySubsequenceContext(original, origInputs, seq, []int{0, 1})
	if len(applied2) != 2 {
		t.Fatalf("full replay applied %v", applied2)
	}
	if ctx2.Mod.String() != c.Mod.String() {
		t.Fatal("full replay diverged")
	}
	if ctx2.Inputs.Uniforms["scale"].F != 2.0*0.5 {
		t.Fatalf("replayed input = %v", ctx2.Inputs.Uniforms["scale"].F)
	}
}
