package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
)

func TestSerializationManySeeds(t *testing.T) {
	refs := corpus.References()
	donors := corpus.Donors()
	for seed := int64(0); seed < 30; seed++ {
		item := refs[int(seed)%len(refs)]
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: seed, Donors: donors, EnableRecommendations: true})
		if err != nil {
			t.Fatal(err)
		}
		data, err := fuzz.MarshalSequence(res.Transformations)
		if err != nil {
			t.Fatal(err)
		}
		back, err := fuzz.UnmarshalSequence(data)
		if err != nil {
			t.Fatal(err)
		}
		replayed, _ := fuzz.Replay(item.Mod, item.Inputs, back)
		direct, _ := fuzz.Replay(item.Mod, item.Inputs, res.Transformations)
		if replayed.String() != direct.String() {
			t.Fatalf("seed %d (%s): serialization changed replay", seed, item.Name)
		}
		if direct.String() != res.Variant.String() {
			t.Fatalf("seed %d (%s): replay diverged", seed, item.Name)
		}
	}
}
