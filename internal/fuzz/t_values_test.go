package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/fact"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

func TestCopyObjectTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry()
	x := entry.Body[1].Result // CompositeExtract result

	tr := &fuzz.CopyObject{Fresh: m.Bound, Source: x, Block: entry.Label, Before: 0}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if !c.Facts.AreSynonymous(fact.A(tr.Fresh), fact.A(x)) {
		t.Fatal("synonym fact missing")
	}

	// Availability: copying a right-arm value into the left arm is rejected.
	left, right := fn.Blocks[1], fn.Blocks[2]
	rv := right.Body[0].Result
	rejected(t, c, &fuzz.CopyObject{Fresh: m.Bound, Source: rv, Block: left.Label})
	// Copying before its own definition is rejected.
	rejected(t, c, &fuzz.CopyObject{Fresh: m.Bound, Source: x, Block: entry.Label, Before: entry.Body[0].Result})
	// Types, labels and functions are not copyable values.
	rejected(t, c, &fuzz.CopyObject{Fresh: m.Bound, Source: m.FindTypeBool(), Block: entry.Label})
	rejected(t, c, &fuzz.CopyObject{Fresh: m.Bound, Source: left.Label, Block: entry.Label})
	rejected(t, c, &fuzz.CopyObject{Fresh: m.Bound, Source: fn.ID(), Block: entry.Label})
}

func TestAddNoOpArithmeticTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Loop())
	m := c.Mod
	fn := m.EntryPointFunction()
	header := fn.Blocks[1]
	iPhi := header.Phis[0].Result // int ϕ
	intT := m.TypeOf(iPhi)
	zero := m.EnsureConstantWord(intT, 0)
	one := m.EnsureConstantWord(intT, 1)

	for _, tc := range []struct {
		op      string
		neutral spirv.ID
	}{
		{"OpIAdd", zero}, {"OpISub", zero}, {"OpIMul", one},
		{"OpBitwiseOr", zero}, {"OpBitwiseXor", zero}, {"OpBitwiseAnd", 0},
	} {
		tr := &fuzz.AddNoOpArithmetic{
			Fresh: m.Bound, Source: iPhi, Opcode: tc.op, Neutral: tc.neutral,
			Block: header.Label, Before: 0,
		}
		applyOK(t, c, tr)
		if !c.Facts.AreSynonymous(fact.A(tr.Fresh), fact.A(iPhi)) {
			t.Fatalf("%s: synonym fact missing", tc.op)
		}
	}
	renderEq(t, c, want)

	// Wrong neutral constant, float source and bogus opcodes are rejected.
	rejected(t, c, &fuzz.AddNoOpArithmetic{Fresh: m.Bound, Source: iPhi, Opcode: "OpIAdd", Neutral: one, Block: header.Label})
	mergeBlk := fn.Blocks[len(fn.Blocks)-1]
	floatVal := mergeBlk.Body[0].Result // ConvertSToF result
	if !m.IsFloatType(m.TypeOf(floatVal)) {
		t.Fatal("expected a float value in the merge block")
	}
	rejected(t, c, &fuzz.AddNoOpArithmetic{Fresh: m.Bound, Source: floatVal, Opcode: "OpIAdd", Neutral: zero, Block: mergeBlk.Label})
	rejected(t, c, &fuzz.AddNoOpArithmetic{Fresh: m.Bound, Source: iPhi, Opcode: "OpFAdd", Neutral: zero, Block: header.Label})
	rejected(t, c, &fuzz.AddNoOpArithmetic{Fresh: m.Bound, Source: iPhi, Opcode: "OpBogus", Neutral: zero, Block: header.Label})
}

func TestCompositeSynonymTransformations(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry()
	vec := entry.Body[0].Result // loaded coord, vec2
	f32 := m.EnsureTypeFloat(32)

	ex := &fuzz.CompositeExtract{Fresh: m.Bound, Composite: vec, Index: 1, Block: entry.Label, Before: 0}
	applyOK(t, c, ex)
	if !c.Facts.AreSynonymous(fact.A(ex.Fresh), fact.At(vec, 1)) {
		t.Fatal("extract synonym missing")
	}
	rejected(t, c, &fuzz.CompositeExtract{Fresh: m.Bound, Composite: vec, Index: 5, Block: entry.Label})

	x := entry.Body[1].Result
	vecT := m.EnsureTypeVector(f32, 2)
	ct := &fuzz.CompositeConstruct{
		Fresh: m.Bound, TypeID: vecT, Members: []spirv.ID{x, ex.Fresh},
		Block: entry.Label, Before: 0,
	}
	applyOK(t, c, ct)
	renderEq(t, c, want)
	if !c.Facts.AreSynonymous(fact.At(ct.Fresh, 0), fact.A(x)) ||
		!c.Facts.AreSynonymous(fact.At(ct.Fresh, 1), fact.A(ex.Fresh)) {
		t.Fatal("per-index construct synonyms missing")
	}
	// Transitively: construct[1] ~ vec[1] through the extract.
	if !c.Facts.AreSynonymous(fact.At(ct.Fresh, 1), fact.At(vec, 1)) {
		t.Fatal("synonym classes must be transitive")
	}
	rejected(t, c, &fuzz.CompositeConstruct{Fresh: m.Bound, TypeID: vecT, Members: []spirv.ID{x}, Block: entry.Label})
	boolT := m.EnsureTypeBool()
	rejected(t, c, &fuzz.CompositeConstruct{Fresh: m.Bound, TypeID: boolT, Members: []spirv.ID{x}, Block: entry.Label})
}

func TestReplaceIdWithSynonymTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry()
	x := entry.Body[1].Result // extract feeding the comparison
	cmp := entry.Body[2]      // FOrdLessThan

	// Without a synonym fact the replacement is rejected.
	copyT := &fuzz.CopyObject{Fresh: m.Bound, Source: x, Block: entry.Label, Before: cmp.Result}
	rejected(t, c, &fuzz.ReplaceIdWithSynonym{User: cmp.Result, OperandIndex: 0, Synonym: m.Bound})
	applyOK(t, c, copyT)
	tr := &fuzz.ReplaceIdWithSynonym{User: cmp.Result, OperandIndex: 0, Synonym: copyT.Fresh}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if cmp.IDOperand(0) != copyT.Fresh {
		t.Fatal("operand not replaced")
	}
	// Replacing with itself, at a non-id operand index, or where the synonym
	// is unavailable, is rejected.
	rejected(t, c, &fuzz.ReplaceIdWithSynonym{User: cmp.Result, OperandIndex: 0, Synonym: copyT.Fresh})
	rejected(t, c, &fuzz.ReplaceIdWithSynonym{User: cmp.Result, OperandIndex: 7, Synonym: x})
}

func TestReplaceIrrelevantIdTransformation(t *testing.T) {
	c, _ := baseline(t, testmod.Caller())
	m := c.Mod
	fn := m.EntryPointFunction()
	helper := m.Functions[0]

	// AddParameter marks the fresh parameter irrelevant; the call site's new
	// argument (a trivial constant) can then be replaced... but the fact
	// lives on the parameter id, and ReplaceIrrelevantId looks at the
	// operand's fact. Use a live-safe call's argument instead: mark the
	// constant-for-parameter flow via FunctionCall's result irrelevance.
	intT := m.EnsureTypeInt(32, true)
	newType := m.EnsureTypeFunction(helper.ReturnType(), m.EnsureTypeFloat(32), intT)
	zero := m.EnsureConstantInt(0)
	var call *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				call = ins
			}
		}
	}
	ap := &fuzz.AddParameter{
		Function:   helper.ID(),
		FreshParam: m.Bound,
		ParamType:  intT,
		NewFnType:  newType,
		CallArgs:   map[spirv.ID]spirv.ID{call.Result: zero},
	}
	applyOK(t, c, ap)
	if !c.Facts.IsIrrelevant(ap.FreshParam) {
		t.Fatal("fresh parameter must be Irrelevant")
	}

	// The helper never reads the new parameter, so any same-typed value can
	// replace the argument at the (live-safe-style) call: ReplaceIrrelevantId
	// permits replacing arguments whose current id is irrelevant — the
	// constant zero is not itself irrelevant, so this path is rejected...
	seven := m.EnsureConstantInt(7)
	tr := &fuzz.ReplaceIrrelevantId{User: call.Result, OperandIndex: 2, Replacement: seven}
	if tr.Precondition(c) {
		t.Fatal("argument constant is not an irrelevant id; replacement must be rejected")
	}
}

func TestReplaceConstantWithUniformTransformation(t *testing.T) {
	// Matrix() declares a float uniform named "scale"; give it the value 0.5
	// so the shader's 0.5 constants can be obfuscated.
	m := testmod.Matrix()
	in := interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(0.5)}}
	c := fuzz.NewContext(m, in)
	want, err := interp.Render(m, c.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fn := m.EntryPointFunction()
	var user *spirv.Instruction
	var opIdx int
	halfVal := interp.FloatVal(0.5)
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Result == 0 {
				continue
			}
			for _, oi := range ins.IDOperandIndices() {
				if c.ConstantMatchesValue(spirv.ID(ins.Operands[oi]), halfVal) {
					user, opIdx = ins, oi
				}
			}
		}
	}
	if user == nil {
		t.Fatal("no 0.5-constant use found")
	}
	var scaleVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageUniformConstant {
			if v, ok := c.UniformValue(ins.Result); ok && v.Equal(halfVal) {
				scaleVar = ins.Result
			}
		}
	}
	tr := &fuzz.ReplaceConstantWithUniform{
		User: user.Result, OperandIndex: opIdx, UniformVar: scaleVar, FreshLoad: m.Bound,
	}
	applyOK(t, c, tr)
	renderEq(t, c, want)
	if spirv.ID(user.Operands[opIdx]) != tr.FreshLoad {
		t.Fatal("constant use not redirected through the uniform load")
	}
	// Value-mismatched uniforms are rejected.
	one := m.EnsureConstantFloat(1)
	var oneUser *spirv.Instruction
	for _, ins := range fn.Blocks[0].Body {
		if ins.UsesID(one) && ins.Result != 0 {
			oneUser = ins
		}
	}
	if oneUser != nil {
		for _, oi := range oneUser.IDOperandIndices() {
			if spirv.ID(oneUser.Operands[oi]) == one {
				rejected(t, c, &fuzz.ReplaceConstantWithUniform{
					User: oneUser.Result, OperandIndex: oi, UniformVar: scaleVar, FreshLoad: m.Bound,
				})
			}
		}
	}
}

func TestSwapCommutableOperandsTransformation(t *testing.T) {
	c, want := baseline(t, testmod.Loop())
	m := c.Mod
	fn := m.EntryPointFunction()
	var add *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpIAdd {
				add = ins
			}
		}
	}
	a0, a1 := add.Operands[0], add.Operands[1]
	applyOK(t, c, &fuzz.SwapCommutableOperands{Instr: add.Result})
	renderEq(t, c, want)
	if add.Operands[0] != a1 || add.Operands[1] != a0 {
		t.Fatal("operands not swapped")
	}
	// Non-commutative ops are rejected.
	var div *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFDiv {
				div = ins
			}
		}
	}
	if div != nil {
		rejected(t, c, &fuzz.SwapCommutableOperands{Instr: div.Result})
	}
	rejected(t, c, &fuzz.SwapCommutableOperands{Instr: 9999})
}

func TestAddStoreAndLoadTransformations(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	entry := fn.Entry()
	f32 := m.EnsureTypeFloat(32)
	ptrT := m.EnsureTypePointer(spirv.StorageFunction, f32)

	// A store through a pointer with no IrrelevantPointee fact, outside any
	// dead block, is rejected (it could change semantics).
	lv := &fuzz.AddLocalVariable{Fresh: m.Bound, PtrType: ptrT, Function: fn.ID()}
	applyOK(t, c, lv)
	x := entry.Body[2].Result // extract (float)... entry gained the variable at [0]
	st := &fuzz.AddStore{Pointer: lv.Fresh, Value: x, Block: entry.Label, Before: 0}
	applyOK(t, c, st) // pointer is IrrelevantPointee, so allowed anywhere
	renderEq(t, c, want)

	// Loads are safe anywhere; result of loading an irrelevant pointee is
	// itself irrelevant.
	ld := &fuzz.AddLoad{Fresh: m.Bound, Pointer: lv.Fresh, Block: entry.Label, Before: 0}
	applyOK(t, c, ld)
	renderEq(t, c, want)
	if !c.Facts.IsIrrelevant(ld.Fresh) {
		t.Fatal("load of irrelevant pointee must be irrelevant")
	}

	// Storing through the *output* variable (relevant!) is rejected.
	var outVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageOutput {
			outVar = ins.Result
		}
	}
	vec4 := m.EnsureTypeVector(f32, 4)
	zero4 := m.EnsureConstantComposite(vec4,
		m.EnsureConstantFloat(0), m.EnsureConstantFloat(0), m.EnsureConstantFloat(0), m.EnsureConstantFloat(0))
	rejected(t, c, &fuzz.AddStore{Pointer: outVar, Value: zero4, Block: entry.Label})

	// Type mismatches are rejected even for irrelevant pointees.
	one := m.EnsureConstantInt(1)
	rejected(t, c, &fuzz.AddStore{Pointer: lv.Fresh, Value: one, Block: entry.Label})
	// Loads through non-pointers are rejected.
	rejected(t, c, &fuzz.AddLoad{Fresh: m.Bound, Pointer: x, Block: entry.Label})
}

func TestAddStoreAllowedInDeadBlock(t *testing.T) {
	c, want := baseline(t, testmod.Diamond())
	m := c.Mod
	fn := m.EntryPointFunction()
	left := fn.Blocks[1]
	trueC := m.EnsureConstantBool(true)
	dead := &fuzz.AddDeadBlock{Fresh: m.Bound, Block: left.Label, TrueConst: trueC}
	applyOK(t, c, dead)

	// Store through the *output* variable inside the dead block: allowed,
	// because the block never executes.
	var outVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageOutput {
			outVar = ins.Result
		}
	}
	f32 := m.EnsureTypeFloat(32)
	vec4 := m.EnsureTypeVector(f32, 4)
	z := m.EnsureConstantFloat(0)
	zero4 := m.EnsureConstantComposite(vec4, z, z, z, z)
	applyOK(t, c, &fuzz.AddStore{Pointer: outVar, Value: zero4, Block: dead.Fresh})
	renderEq(t, c, want)
}
