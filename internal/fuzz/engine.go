package fuzz

import (
	"fmt"
	"math/rand"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
)

// Options configures a fuzzing run.
type Options struct {
	// Seed controls all randomization (Section 3.2: "randomization is
	// controlled by a seed passed to spirv-fuzz on the command line").
	Seed int64
	// MaxTransformations caps the sequence length; the tool definitely
	// stops once the limit is exceeded. Defaults to 2000, as in the paper.
	MaxTransformations int
	// EnableRecommendations turns on the follow-on pass queue. Disabling it
	// gives the spirv-fuzz-simple configuration of Section 4.1.
	EnableRecommendations bool
	// Donors are modules whose functions may be donated via AddFunction.
	Donors []*spirv.Module
	// ValidateAfterEachPass re-validates the module after every pass and
	// makes Fuzz return an error naming the offending pass. Used by tests;
	// too slow for large campaigns.
	ValidateAfterEachPass bool
	// ContinueProbability is the chance of running another pass after each
	// pass completes (default 0.9).
	ContinueProbability float64
	// MinPasses is the number of passes run before the stop coin is first
	// flipped (default 6).
	MinPasses int
	// MaxPasses bounds the number of passes (default 30).
	MaxPasses int
}

func (o Options) withDefaults() Options {
	if o.MaxTransformations == 0 {
		o.MaxTransformations = 2000
	}
	if o.ContinueProbability == 0 {
		o.ContinueProbability = 0.9
	}
	if o.MinPasses == 0 {
		o.MinPasses = 6
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 30
	}
	return o
}

// Result is the outcome of a fuzzing run.
type Result struct {
	// Variant is the transformed module.
	Variant *spirv.Module
	// Transformations is the applied sequence; replaying it on the original
	// module (Definition 2.5) reproduces Variant exactly.
	Transformations []Transformation
	// PassesRun lists the fuzzer passes in execution order.
	PassesRun []string
	// Inputs are the (possibly modified) inputs the variant executes on:
	// input-modifying transformations like ScaleUniform change them in sync
	// with the module.
	Inputs interp.Inputs
}

// Fuzz applies randomized semantics-preserving transformations to a copy of
// original, returning the variant and the transformation sequence.
func Fuzz(original *spirv.Module, inputs interp.Inputs, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	ctx := NewContext(original.Clone(), inputs)
	res := &Result{}

	emit := func(t Transformation) bool {
		if len(res.Transformations) >= opts.MaxTransformations {
			return false
		}
		if !t.Precondition(ctx) {
			return false
		}
		t.Apply(ctx)
		res.Transformations = append(res.Transformations, t)
		return true
	}

	passes := Passes(opts.Donors)
	byName := make(map[string]Pass, len(passes))
	for _, p := range passes {
		byName[p.Name] = p
	}
	var queue []string // recommendation queue (FIFO)

	for i := 0; i < opts.MaxPasses; i++ {
		var pass Pass
		// With uniform probability, pop a recommended pass or pick at random.
		if opts.EnableRecommendations && len(queue) > 0 && coin(rng, 0.5) {
			pass = byName[queue[0]]
			queue = queue[1:]
		} else {
			pass = passes[rng.Intn(len(passes))]
		}
		pass.Run(ctx, rng, emit)
		res.PassesRun = append(res.PassesRun, pass.Name)
		if opts.ValidateAfterEachPass {
			if err := validate.Module(ctx.Mod); err != nil {
				return nil, fmt.Errorf("fuzz: module invalid after pass %s: %w", pass.Name, err)
			}
		}
		if opts.EnableRecommendations {
			// Push a random subset of follow-on passes.
			for _, follow := range Recommendations[pass.Name] {
				if coin(rng, 0.5) {
					queue = append(queue, follow)
				}
			}
		}
		if len(res.Transformations) >= opts.MaxTransformations {
			break
		}
		if i+1 >= opts.MinPasses && !coin(rng, opts.ContinueProbability) {
			break
		}
	}
	res.Variant = ctx.Mod
	res.Inputs = ctx.Inputs
	return res, nil
}

// ReplayContext applies a transformation sequence to a fresh copy of the
// original context per Definition 2.5 (skipping transformations whose
// preconditions fail) and returns the resulting context — module and
// (possibly co-modified) inputs — plus the indices actually applied.
func ReplayContext(original *spirv.Module, inputs interp.Inputs, ts []Transformation) (*Context, []int) {
	ctx := NewContext(original.Clone(), inputs)
	applied := core.ApplySequence(ctx, ts)
	return ctx, applied
}

// Replay is ReplayContext returning only the module.
func Replay(original *spirv.Module, inputs interp.Inputs, ts []Transformation) (*spirv.Module, []int) {
	ctx, applied := ReplayContext(original, inputs, ts)
	return ctx.Mod, applied
}

// ReplaySubsequenceContext replays only the transformations selected by keep.
func ReplaySubsequenceContext(original *spirv.Module, inputs interp.Inputs, ts []Transformation, keep []int) (*Context, []int) {
	ctx := NewContext(original.Clone(), inputs)
	applied := core.ApplySubsequence(ctx, ts, keep)
	return ctx, applied
}

// ReplaySubsequence is ReplaySubsequenceContext returning only the module.
func ReplaySubsequence(original *spirv.Module, inputs interp.Inputs, ts []Transformation, keep []int) (*spirv.Module, []int) {
	ctx, applied := ReplaySubsequenceContext(original, inputs, ts, keep)
	return ctx.Mod, applied
}

// TypeCounts returns how many applied transformations each type contributed
// — useful for campaign diagnostics and for inspecting what a fuzzing run
// actually did.
func (r *Result) TypeCounts() map[string]int {
	out := make(map[string]int)
	for _, t := range r.Transformations {
		out[t.Type()]++
	}
	return out
}
