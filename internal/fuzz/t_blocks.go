package fuzz

import (
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// Control-flow transformations: prior work has shown these to be effective
// at uncovering bugs (Section 3.2).

// Transformation type identifiers for block transformations.
const (
	TypeSplitBlock            = "SplitBlock"
	TypeAddDeadBlock          = "AddDeadBlock"
	TypeReplaceBranchWithKill = "ReplaceBranchWithKill"
	TypeMoveBlockDown         = "MoveBlockDown"
	TypeWrapRegionInSelection = "WrapRegionInSelection"
)

// retargetPhis rewrites ϕ parents from old to new in block s.
func retargetPhis(s *spirv.Block, old, new spirv.ID) {
	for _, phi := range s.Phis {
		for i := 1; i < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i]) == old {
				phi.Operands[i] = uint32(new)
			}
		}
	}
}

// dropPhiParent removes (value, parent) pairs with the given parent from
// every ϕ of block s.
func dropPhiParent(s *spirv.Block, parent spirv.ID) {
	for _, phi := range s.Phis {
		ops := phi.Operands[:0]
		for i := 0; i+1 < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i+1]) != parent {
				ops = append(ops, phi.Operands[i], phi.Operands[i+1])
			}
		}
		phi.Operands = ops
	}
}

// extendPhisForNewPred gives every ϕ of block s an incoming value for the
// new predecessor newPred, copying the value s receives from donorPred
// (which must dominate newPred for availability to hold).
func extendPhisForNewPred(s *spirv.Block, donorPred, newPred spirv.ID) {
	for _, phi := range s.Phis {
		var val uint32
		for i := 0; i+1 < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i+1]) == donorPred {
				val = phi.Operands[i]
				break
			}
		}
		phi.Operands = append(phi.Operands, val, uint32(newPred))
	}
}

// SplitBlock splits the block containing the anchor instruction so that the
// anchor becomes the first instruction of a fresh block. Identifying the
// split point by instruction id — not by (block, offset) — follows the
// independence principle of Section 2.3: two splits of what was originally
// one block reduce independently.
type SplitBlock struct {
	Anchor spirv.ID `json:"anchor"` // body instruction that will start the new block
	Fresh  spirv.ID `json:"fresh"`  // label of the new block
}

// Type implements Transformation.
func (t *SplitBlock) Type() string { return TypeSplitBlock }

// Precondition: the anchor is a body instruction of a block that heads no
// structured construct, and Fresh is unused.
func (t *SplitBlock) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	loc := c.FindInstruction(t.Anchor)
	return loc != nil && loc.Index >= 0 && loc.Block.Merge == nil
}

// Apply performs the split, retargeting successor ϕs to the new block.
func (t *SplitBlock) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	loc := c.FindInstruction(t.Anchor)
	b := loc.Block
	nb := &spirv.Block{
		Label: t.Fresh,
		Body:  append([]*spirv.Instruction(nil), b.Body[loc.Index:]...),
		Term:  b.Term,
	}
	for _, s := range b.Successors() {
		if _, sb := c.FindBlock(s); sb != nil {
			retargetPhis(sb, b.Label, t.Fresh)
		}
	}
	b.Body = b.Body[:loc.Index:loc.Index]
	b.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(t.Fresh))
	InsertBlockAfter(loc.Fn, b, nb)
	if c.Facts.IsDeadBlock(b.Label) {
		c.Facts.MarkDeadBlock(t.Fresh)
	}
}

// AddDeadBlock turns an unconditional edge b→s into a conditional branch on
// a true constant, with the false target a fresh block that just branches to
// s. The fresh block is dynamically unreachable; the fact DeadBlock(Fresh)
// is recorded. Following the simplicity principle of Section 2.3 the
// transformation does not manufacture its own constant: it requires an
// existing OpConstantTrue (added by a supporting transformation), so the
// reducer can keep the constant but drop the block, or vice versa.
type AddDeadBlock struct {
	Fresh     spirv.ID `json:"fresh"`
	Block     spirv.ID `json:"block"`
	TrueConst spirv.ID `json:"trueConst"`
}

// Type implements Transformation.
func (t *AddDeadBlock) Type() string { return TypeAddDeadBlock }

// Precondition: Block ends in OpBranch and heads no construct, TrueConst is
// an OpConstantTrue, and Fresh is unused.
func (t *AddDeadBlock) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	_, b := c.FindBlock(t.Block)
	if b == nil || b.Merge != nil || b.Term.Op != spirv.OpBranch {
		return false
	}
	def := c.Mod.Def(t.TrueConst)
	return def != nil && def.Op == spirv.OpConstantTrue
}

// Apply inserts the dead block.
func (t *AddDeadBlock) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	fn, b := c.FindBlock(t.Block)
	succ := b.Term.IDOperand(0)
	nb := &spirv.Block{Label: t.Fresh, Term: spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(succ))}
	b.Merge = spirv.NewInstr(spirv.OpSelectionMerge, 0, 0, uint32(succ), spirv.SelectionControlNone)
	b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(t.TrueConst), uint32(succ), uint32(t.Fresh))
	InsertBlockAfter(fn, b, nb)
	if _, sb := c.FindBlock(succ); sb != nil {
		extendPhisForNewPred(sb, b.Label, t.Fresh)
	}
	c.Facts.MarkDeadBlock(t.Fresh)
}

// ReplaceBranchWithKill changes a dead block's unconditional branch into
// OpKill, which terminates the fragment. Because the block never executes,
// semantics are preserved, while the static control-flow graph changes
// substantially (Section 3.2).
type ReplaceBranchWithKill struct {
	Block spirv.ID `json:"block"`
}

// Type implements Transformation.
func (t *ReplaceBranchWithKill) Type() string { return TypeReplaceBranchWithKill }

// Precondition: the fact DeadBlock(Block) holds and the block ends in
// OpBranch with no merge instruction.
func (t *ReplaceBranchWithKill) Precondition(c *Context) bool {
	if !c.Facts.IsDeadBlock(t.Block) {
		return false
	}
	_, b := c.FindBlock(t.Block)
	return b != nil && b.Merge == nil && b.Term.Op == spirv.OpBranch
}

// Apply replaces the branch and prunes the stale ϕ edges of the former
// successor.
func (t *ReplaceBranchWithKill) Apply(c *Context) {
	_, b := c.FindBlock(t.Block)
	succ := b.Term.IDOperand(0)
	b.Term = spirv.NewInstr(spirv.OpKill, 0, 0)
	if _, sb := c.FindBlock(succ); sb != nil {
		dropPhiParent(sb, b.Label)
	}
}

// MoveBlockDown swaps a block with its syntactic successor when doing so
// still respects the SPIR-V rule that a block appears after its immediate
// dominator. A PermuteBlocks fuzzer pass applies many MoveBlockDowns to
// shuffle block order (the simplicity principle: a permutation reduces to
// the minimal set of swaps that still triggers the bug). This transformation
// triggered the Pixel 5 driver bug of Figure 8b.
type MoveBlockDown struct {
	Block spirv.ID `json:"block"`
}

// Type implements Transformation.
func (t *MoveBlockDown) Type() string { return TypeMoveBlockDown }

// Precondition: Block is neither the entry nor the last block of its
// function, and the block after it is not immediately dominated by it.
func (t *MoveBlockDown) Precondition(c *Context) bool {
	fn, b := c.FindBlock(t.Block)
	if fn == nil {
		return false
	}
	i := fn.BlockIndex(b.Label)
	if i < 1 || i+1 >= len(fn.Blocks) {
		return false
	}
	next := fn.Blocks[i+1]
	dom := cfa.Dominators(cfa.Build(fn))
	if idom, reachable := dom.Idom[next.Label]; reachable && idom == b.Label {
		return false
	}
	return true
}

// Apply swaps the blocks.
func (t *MoveBlockDown) Apply(c *Context) {
	fn, b := c.FindBlock(t.Block)
	i := fn.BlockIndex(b.Label)
	fn.Blocks[i], fn.Blocks[i+1] = fn.Blocks[i+1], fn.Blocks[i]
}

// WrapRegionInSelection wraps a block's body in one branch of a conditional
// on a constant: the then-branch of a true conditional, or the else-branch
// of a false conditional. Both forms share this single transformation type
// — the "common types for related transformations" principle of Section 3.3
// — so deduplication treats test cases using either form as similar.
type WrapRegionInSelection struct {
	Block      spirv.ID `json:"block"`
	FreshInner spirv.ID `json:"freshInner"`
	FreshMerge spirv.ID `json:"freshMerge"`
	CondConst  spirv.ID `json:"condConst"` // OpConstantTrue or OpConstantFalse
}

// Type implements Transformation.
func (t *WrapRegionInSelection) Type() string { return TypeWrapRegionInSelection }

// Precondition: Block ends in OpBranch with no merge instruction, the fresh
// ids are unused and distinct, CondConst is a boolean constant, and no id
// defined in the block's body is used outside it. The last condition keeps
// the rewrite SSA-sound: the wrapped body no longer dominates the merge
// block (the never-taken skip edge joins there), so its definitions must not
// escape.
func (t *WrapRegionInSelection) Precondition(c *Context) bool {
	if !c.FreshAll(t.FreshInner, t.FreshMerge) {
		return false
	}
	fn, b := c.FindBlock(t.Block)
	if b == nil || b.Merge != nil || b.Term.Op != spirv.OpBranch {
		return false
	}
	if _, isBool := c.Mod.ConstantBoolValue(t.CondConst); !isBool {
		return false
	}
	defined := make(map[spirv.ID]bool)
	for _, ins := range b.Body {
		if ins.Result != 0 {
			defined[ins.Result] = true
		}
	}
	if len(defined) == 0 {
		return true
	}
	escapes := false
	for _, ob := range fn.Blocks {
		check := func(ins *spirv.Instruction) {
			if escapes {
				return
			}
			ins.Uses(func(id spirv.ID) {
				if defined[id] {
					escapes = true
				}
			})
		}
		if ob == b {
			// Uses within the body itself are fine; the (unconditional)
			// terminator and ϕs of b cannot use body values.
			for _, p := range ob.Phis {
				check(p)
			}
			continue
		}
		ob.Instructions(check)
		if escapes {
			return false
		}
	}
	return !escapes
}

// Apply restructures b into header → inner → merge → original successor.
func (t *WrapRegionInSelection) Apply(c *Context) {
	c.ClaimID(t.FreshInner)
	c.ClaimID(t.FreshMerge)
	fn, b := c.FindBlock(t.Block)
	succ := b.Term.IDOperand(0)
	inner := &spirv.Block{
		Label: t.FreshInner,
		Body:  b.Body,
		Term:  spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(t.FreshMerge)),
	}
	mergeBlk := &spirv.Block{Label: t.FreshMerge, Term: b.Term}
	b.Body = nil
	b.Merge = spirv.NewInstr(spirv.OpSelectionMerge, 0, 0, uint32(t.FreshMerge), spirv.SelectionControlNone)
	condVal, _ := c.Mod.ConstantBoolValue(t.CondConst)
	if condVal {
		// then-form: if (true) { body }
		b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(t.CondConst), uint32(t.FreshInner), uint32(t.FreshMerge))
	} else {
		// else-form: if (false) {} else { body }
		b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(t.CondConst), uint32(t.FreshMerge), uint32(t.FreshInner))
	}
	InsertBlockAfter(fn, b, inner)
	InsertBlockAfter(fn, inner, mergeBlk)
	if _, sb := c.FindBlock(succ); sb != nil {
		retargetPhis(sb, b.Label, t.FreshMerge)
	}
	if c.Facts.IsDeadBlock(b.Label) {
		c.Facts.MarkDeadBlock(t.FreshInner)
		c.Facts.MarkDeadBlock(t.FreshMerge)
	}
}

func init() {
	register(TypeSplitBlock, func() Transformation { return &SplitBlock{} })
	register(TypeAddDeadBlock, func() Transformation { return &AddDeadBlock{} })
	register(TypeReplaceBranchWithKill, func() Transformation { return &ReplaceBranchWithKill{} })
	register(TypeMoveBlockDown, func() Transformation { return &MoveBlockDown{} })
	register(TypeWrapRegionInSelection, func() Transformation { return &WrapRegionInSelection{} })
}
