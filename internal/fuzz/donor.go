package fuzz

import (
	"math/rand"

	"spirvfuzz/internal/spirv"
)

// Donation: harvesting functions from donor modules (Section 3.2). The
// fuzzer pass picks a function from a donor, emits supporting
// transformations for any types and constants the target module lacks, and
// encodes the function — with all ids remapped to fresh target ids — into a
// self-contained AddFunction transformation.

// donatable reports whether fn can be made live-safe trivially: it touches
// no global state, calls no functions, cannot kill the fragment, and (by
// corpus construction) its loops have constant bounds. Such a function's
// only observable behaviour is its return value, so calling it from
// anywhere preserves results.
func donatable(m *spirv.Module, fn *spirv.Function) bool {
	localOrParam := make(map[spirv.ID]bool)
	for _, p := range fn.Params {
		localOrParam[p.Result] = true
	}
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Result != 0 {
				localOrParam[ins.Result] = true
			}
		}
		for _, p := range b.Phis {
			localOrParam[p.Result] = true
		}
	}
	for _, b := range fn.Blocks {
		if b.Term.Op == spirv.OpKill || b.Term.Op == spirv.OpUnreachable {
			return false
		}
		for _, ins := range b.Body {
			switch ins.Op {
			case spirv.OpFunctionCall:
				return false
			case spirv.OpStore, spirv.OpLoad, spirv.OpAccessChain:
				// Memory access is fine only through locals or parameters.
				if !localOrParam[ins.IDOperand(0)] {
					return false
				}
			}
		}
	}
	return true
}

// Donate exposes the donation pipeline: it builds the supporting
// transformations plus the AddFunction that graft a copy of donor function
// fn into the target context (nil when fn is not donatable). The fuzzer's
// DonateFunctions pass uses it internally; it is also the building block for
// custom donation strategies.
func Donate(c *Context, donor *spirv.Module, fn *spirv.Function, liveSafe bool) []Transformation {
	return donate(c, donor, fn, liveSafe, nil)
}

// donate builds the transformations that graft a copy of donor function fn
// into the target context: supporting type/constant transformations first,
// then the AddFunction itself. It returns nil when the function is not
// donatable. The ids in the returned transformations are chosen against c's
// current state; the transformations must be applied in order immediately.
func donate(c *Context, donor *spirv.Module, fn *spirv.Function, liveSafe bool, rng *rand.Rand) []Transformation {
	if !donatable(donor, fn) {
		return nil
	}
	var out []Transformation
	next := c.Mod.Bound // fresh ids are handed out sequentially from here
	fresh := func() spirv.ID {
		id := next
		next++
		return id
	}

	// typeMap/constMap translate donor module-scope ids to target ids,
	// emitting supporting transformations for anything missing.
	idMap := make(map[spirv.ID]spirv.ID)
	var mapType func(t spirv.ID) (spirv.ID, bool)
	var mapConst func(cid spirv.ID) (spirv.ID, bool)

	mapType = func(t spirv.ID) (spirv.ID, bool) {
		if got, ok := idMap[t]; ok {
			return got, ok
		}
		def := donor.Def(t)
		if def == nil || !def.Op.IsType() {
			return 0, false
		}
		var id spirv.ID
		switch def.Op {
		case spirv.OpTypeVoid:
			if id = c.Mod.FindTypeVoid(); id == 0 {
				return 0, false // void is always present in real modules
			}
		case spirv.OpTypeBool:
			if id = c.Mod.FindTypeBool(); id == 0 {
				id = fresh()
				out = append(out, &AddTypeBool{Fresh: id})
			}
		case spirv.OpTypeInt:
			signed := def.Operands[1] == 1
			if id = c.Mod.FindTypeInt(def.Operands[0], signed); id == 0 {
				id = fresh()
				out = append(out, &AddTypeInt{Fresh: id, Width: def.Operands[0], Signed: signed})
			}
		case spirv.OpTypeFloat:
			if id = c.Mod.FindTypeFloat(def.Operands[0]); id == 0 {
				id = fresh()
				out = append(out, &AddTypeFloat{Fresh: id, Width: def.Operands[0]})
			}
		case spirv.OpTypeVector:
			elem, ok := mapType(spirv.ID(def.Operands[0]))
			if !ok {
				return 0, false
			}
			if id = c.Mod.FindTypeVector(elem, int(def.Operands[1])); id == 0 {
				id = fresh()
				out = append(out, &AddTypeVector{Fresh: id, Elem: elem, N: int(def.Operands[1])})
			}
		case spirv.OpTypePointer:
			if def.Operands[0] != spirv.StorageFunction {
				return 0, false // only local pointers are donatable
			}
			pointee, ok := mapType(spirv.ID(def.Operands[1]))
			if !ok {
				return 0, false
			}
			if id = c.Mod.FindTypePointer(def.Operands[0], pointee); id == 0 {
				id = fresh()
				out = append(out, &AddTypePointer{Fresh: id, Storage: def.Operands[0], Pointee: pointee})
			}
		case spirv.OpTypeFunction:
			ret, ok := mapType(spirv.ID(def.Operands[0]))
			if !ok {
				return 0, false
			}
			var params []spirv.ID
			for _, w := range def.Operands[1:] {
				p, ok := mapType(spirv.ID(w))
				if !ok {
					return 0, false
				}
				params = append(params, p)
			}
			if id = c.Mod.FindTypeFunction(ret, params...); id == 0 {
				id = fresh()
				out = append(out, &AddTypeFunction{Fresh: id, Return: ret, Params: params})
			}
		default:
			return 0, false // matrices/arrays/structs: donors avoid them at function scope
		}
		idMap[t] = id
		return id, true
	}

	mapConst = func(cid spirv.ID) (spirv.ID, bool) {
		if got, ok := idMap[cid]; ok {
			return got, ok
		}
		def := donor.Def(cid)
		if def == nil || !def.Op.IsConstant() {
			return 0, false
		}
		var id spirv.ID
		switch def.Op {
		case spirv.OpConstantTrue, spirv.OpConstantFalse:
			val := def.Op == spirv.OpConstantTrue
			if v, ok := findBoolConst(c.Mod, val); ok {
				id = v
			} else {
				if _, ok := mapType(def.Type); !ok {
					return 0, false
				}
				id = fresh()
				out = append(out, &AddConstantBoolean{Fresh: id, Value: val})
			}
		case spirv.OpConstant:
			typ, ok := mapType(def.Type)
			if !ok || len(def.Operands) != 1 {
				return 0, false
			}
			if v, ok := findScalarConst(c.Mod, typ, def.Operands[0]); ok {
				id = v
			} else {
				id = fresh()
				out = append(out, &AddConstantScalar{Fresh: id, TypeID: typ, Word: def.Operands[0]})
			}
		case spirv.OpConstantComposite:
			typ, ok := mapType(def.Type)
			if !ok {
				return 0, false
			}
			members := make([]spirv.ID, len(def.Operands))
			for i, w := range def.Operands {
				mc, ok := mapConst(spirv.ID(w))
				if !ok {
					return 0, false
				}
				members[i] = mc
			}
			if v, ok := findCompositeConst(c.Mod, typ, members); ok {
				id = v
			} else {
				id = fresh()
				out = append(out, &AddConstantComposite{Fresh: id, TypeID: typ, Members: members})
			}
		default:
			return 0, false
		}
		idMap[cid] = id
		return id, true
	}

	// Remap the function body. Internal ids get fresh ids; external ids go
	// through the type/constant maps.
	internal := make(map[spirv.ID]bool)
	internal[fn.ID()] = true
	for _, p := range fn.Params {
		internal[p.Result] = true
	}
	for _, b := range fn.Blocks {
		internal[b.Label] = true
		b.Instructions(func(ins *spirv.Instruction) {
			if ins.Result != 0 {
				internal[ins.Result] = true
			}
		})
	}
	mapID := func(id spirv.ID) (spirv.ID, bool) {
		if got, ok := idMap[id]; ok {
			return got, ok
		}
		if internal[id] {
			f := fresh()
			idMap[id] = f
			return f, true
		}
		if t, ok := mapType(id); ok {
			return t, true
		}
		return mapConst(id)
	}

	encode := func(ins *spirv.Instruction) (EncodedInstr, bool) {
		cl := ins.Clone()
		ok := true
		cl.MapAllIDs(func(id spirv.ID) spirv.ID {
			m, found := mapID(id)
			if !found {
				ok = false
				return id
			}
			return m
		})
		return EncodeInstr(cl), ok
	}

	add := &AddFunction{LiveSafe: liveSafe}
	var ok bool
	if add.Def, ok = encode(fn.Def); !ok {
		return nil
	}
	for _, p := range fn.Params {
		e, ok := encode(p)
		if !ok {
			return nil
		}
		add.Params = append(add.Params, e)
	}
	for _, b := range fn.Blocks {
		label, _ := mapID(b.Label)
		eb := EncodedBlock{Label: label}
		for _, p := range b.Phis {
			e, ok := encode(p)
			if !ok {
				return nil
			}
			eb.Phis = append(eb.Phis, e)
		}
		for _, ins := range b.Body {
			e, ok := encode(ins)
			if !ok {
				return nil
			}
			eb.Body = append(eb.Body, e)
		}
		if b.Merge != nil {
			e, ok := encode(b.Merge)
			if !ok {
				return nil
			}
			eb.Merge = &e
		}
		e, ok := encode(b.Term)
		if !ok {
			return nil
		}
		eb.Term = e
		add.Blocks = append(add.Blocks, eb)
	}
	_ = rng
	return append(out, add)
}

func findBoolConst(m *spirv.Module, val bool) (spirv.ID, bool) {
	want := spirv.OpConstantFalse
	if val {
		want = spirv.OpConstantTrue
	}
	for _, ins := range m.TypesGlobals {
		if ins.Op == want {
			return ins.Result, true
		}
	}
	return 0, false
}

func findCompositeConst(m *spirv.Module, typ spirv.ID, members []spirv.ID) (spirv.ID, bool) {
	for _, ins := range m.TypesGlobals {
		if ins.Op != spirv.OpConstantComposite || ins.Type != typ || len(ins.Operands) != len(members) {
			continue
		}
		match := true
		for i, mID := range members {
			if spirv.ID(ins.Operands[i]) != mID {
				match = false
				break
			}
		}
		if match {
			return ins.Result, true
		}
	}
	return 0, false
}

func findScalarConst(m *spirv.Module, typ spirv.ID, word uint32) (spirv.ID, bool) {
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpConstant && ins.Type == typ && len(ins.Operands) == 1 && ins.Operands[0] == word {
			return ins.Result, true
		}
	}
	return 0, false
}
