package fuzz

import "spirvfuzz/internal/spirv"

// TypeSplitBlockAtOffset identifies the deliberately flawed SplitBlock
// variant used by the design-principle ablations.
const TypeSplitBlockAtOffset = "SplitBlockAtOffset"

// SplitBlockAtOffset is the (block, offset)-parameterised SplitBlock that
// Section 2.3 warns against: two splits of what was originally one block
// become artificially dependent, because the second split must name the
// block the first one created. It exists only so the ablation benchmarks can
// quantify the cost of violating the independence principle; no fuzzer pass
// emits it.
type SplitBlockAtOffset struct {
	Block  spirv.ID `json:"block"`
	Offset int      `json:"offset"`
	Fresh  spirv.ID `json:"fresh"`
}

// Type implements Transformation.
func (t *SplitBlockAtOffset) Type() string { return TypeSplitBlockAtOffset }

// Precondition: the named block exists with at least Offset body
// instructions and no merge instruction, and Fresh is unused.
func (t *SplitBlockAtOffset) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	_, b := c.FindBlock(t.Block)
	return b != nil && b.Merge == nil && t.Offset >= 0 && t.Offset <= len(b.Body)
}

// Apply splits exactly like SplitBlock, but keyed on the offset.
func (t *SplitBlockAtOffset) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	fn, b := c.FindBlock(t.Block)
	nb := &spirv.Block{
		Label: t.Fresh,
		Body:  append([]*spirv.Instruction(nil), b.Body[t.Offset:]...),
		Term:  b.Term,
	}
	for _, s := range b.Successors() {
		if _, sb := c.FindBlock(s); sb != nil {
			retargetPhis(sb, b.Label, t.Fresh)
		}
	}
	b.Body = b.Body[:t.Offset:t.Offset]
	b.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(t.Fresh))
	InsertBlockAfter(fn, b, nb)
	if c.Facts.IsDeadBlock(t.Block) {
		c.Facts.MarkDeadBlock(t.Fresh)
	}
}

func init() {
	register(TypeSplitBlockAtOffset, func() Transformation { return &SplitBlockAtOffset{} })
}
