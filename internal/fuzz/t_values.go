package fuzz

import (
	"spirvfuzz/internal/fact"
	"spirvfuzz/internal/spirv"
)

// Data-flow transformations: synonym creation, id replacement, obfuscation
// of constants via uniforms, and stores/loads that cannot affect results.

// Transformation type identifiers for value transformations.
const (
	TypeCopyObject                 = "CopyObject"
	TypeAddNoOpArithmetic          = "AddNoOpArithmetic"
	TypeCompositeConstructSynonym  = "CompositeConstruct"
	TypeCompositeExtractSynonym    = "CompositeExtract"
	TypeReplaceIdWithSynonym       = "ReplaceIdWithSynonym"
	TypeReplaceIrrelevantId        = "ReplaceIrrelevantId"
	TypeReplaceConstantWithUniform = "ReplaceConstantWithUniform"
	TypeSwapCommutableOperands     = "SwapCommutableOperands"
	TypeAddStore                   = "AddStore"
	TypeAddLoad                    = "AddLoad"
)

// insertionPoint locates the place identified by (Block, Before): the body
// index of the instruction with result id Before, or the end of the block's
// body when Before is zero. Returns nil when invalid.
type insertionPoint struct {
	fn    *spirv.Function
	block *spirv.Block
	index int
}

func (c *Context) insertion(blockID, before spirv.ID) *insertionPoint {
	fn, b := c.FindBlock(blockID)
	if fn == nil {
		return nil
	}
	if before == 0 {
		return &insertionPoint{fn: fn, block: b, index: len(b.Body)}
	}
	for i, ins := range b.Body {
		if ins.Result == before {
			return &insertionPoint{fn: fn, block: b, index: i}
		}
	}
	return nil
}

// valueType reports whether id names a usable value (not a type, label,
// function or void-typed result).
func (c *Context) valueType(id spirv.ID) (spirv.ID, bool) {
	def := c.Mod.Def(id)
	if def == nil || def.Op.IsType() || def.Op == spirv.OpLabel || def.Op == spirv.OpFunction {
		return 0, false
	}
	if def.Type == 0 || c.Mod.TypeOp(def.Type) == spirv.OpTypeVoid {
		return 0, false
	}
	return def.Type, true
}

// CopyObject inserts Fresh = OpCopyObject Source at an insertion point where
// Source is available, recording Synonymous(Fresh, Source).
type CopyObject struct {
	Fresh  spirv.ID `json:"fresh"`
	Source spirv.ID `json:"source"`
	Block  spirv.ID `json:"block"`
	Before spirv.ID `json:"before,omitempty"` // 0 = end of block
}

// Type implements Transformation.
func (t *CopyObject) Type() string { return TypeCopyObject }

// Precondition: fresh id, valid insertion point, source available there.
func (t *CopyObject) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	if _, ok := c.valueType(t.Source); !ok {
		return false
	}
	return c.AvailableAt(t.Source, pt.fn, pt.block, pt.index)
}

// Apply inserts the copy and records the synonym fact.
func (t *CopyObject) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	typ, _ := c.valueType(t.Source)
	InsertBefore(pt.block, pt.index, spirv.NewInstr(spirv.OpCopyObject, typ, t.Fresh, uint32(t.Source)))
	c.Facts.AddSynonym(fact.A(t.Fresh), fact.A(t.Source))
}

// AddNoOpArithmetic inserts an integer identity computation — x+0, x-0, x*1,
// x|0, x&x or x^0 — recording Synonymous(Fresh, Source). Only integer
// identities are used: they hold bit-exactly for every input, unlike most
// floating-point identities.
type AddNoOpArithmetic struct {
	Fresh   spirv.ID `json:"fresh"`
	Source  spirv.ID `json:"source"`
	Opcode  string   `json:"opcode"`  // OpIAdd, OpISub, OpIMul, OpBitwiseOr, OpBitwiseAnd, OpBitwiseXor
	Neutral spirv.ID `json:"neutral"` // the 0/1 constant (ignored for OpBitwiseAnd x&x)
	Block   spirv.ID `json:"block"`
	Before  spirv.ID `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *AddNoOpArithmetic) Type() string { return TypeAddNoOpArithmetic }

// neutralWord returns the required literal value of the neutral constant.
func (t *AddNoOpArithmetic) neutralWord() (uint32, bool) {
	switch t.Opcode {
	case "OpIAdd", "OpISub", "OpBitwiseOr", "OpBitwiseXor":
		return 0, true
	case "OpIMul":
		return 1, true
	case "OpBitwiseAnd":
		return 0, false // x & x: no neutral constant needed
	}
	return 0, false
}

// Precondition: source is an available integer scalar, and the neutral
// constant (when required) is an integer constant of the same type holding
// the identity element.
func (t *AddNoOpArithmetic) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	op, knownOp := spirv.OpcodeByName(t.Opcode)
	switch op {
	case spirv.OpIAdd, spirv.OpISub, spirv.OpIMul, spirv.OpBitwiseOr, spirv.OpBitwiseAnd, spirv.OpBitwiseXor:
	default:
		knownOp = false
	}
	if !knownOp {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	typ, ok := c.valueType(t.Source)
	if !ok || !c.Mod.IsIntType(typ) {
		return false
	}
	if !c.AvailableAt(t.Source, pt.fn, pt.block, pt.index) {
		return false
	}
	if want, needed := t.neutralWord(); needed {
		def := c.Mod.Def(t.Neutral)
		if def == nil || def.Op != spirv.OpConstant || def.Type != typ || def.Operands[0] != want {
			return false
		}
	}
	return true
}

// Apply inserts the identity computation and records the synonym.
func (t *AddNoOpArithmetic) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	typ, _ := c.valueType(t.Source)
	op, _ := spirv.OpcodeByName(t.Opcode)
	second := uint32(t.Neutral)
	if op == spirv.OpBitwiseAnd {
		second = uint32(t.Source)
	}
	InsertBefore(pt.block, pt.index, spirv.NewInstr(op, typ, t.Fresh, uint32(t.Source), second))
	c.Facts.AddSynonym(fact.A(t.Fresh), fact.A(t.Source))
}

// CompositeConstruct builds a composite from available constituents,
// recording Synonymous facts relating each index of the composite to the
// constituent it was created from (Section 3.2).
type CompositeConstruct struct {
	Fresh   spirv.ID   `json:"fresh"`
	TypeID  spirv.ID   `json:"typeId"`
	Members []spirv.ID `json:"members"`
	Block   spirv.ID   `json:"block"`
	Before  spirv.ID   `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *CompositeConstruct) Type() string { return TypeCompositeConstructSynonym }

// Precondition: composite type with matching member types, all members
// available at the insertion point.
func (t *CompositeConstruct) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	n, ok := c.Mod.CompositeMemberCount(t.TypeID)
	if !ok || n != len(t.Members) {
		return false
	}
	for i, mid := range t.Members {
		typ, ok := c.valueType(mid)
		if !ok {
			return false
		}
		want, _ := c.Mod.CompositeMemberType(t.TypeID, i)
		if typ != want || !c.AvailableAt(mid, pt.fn, pt.block, pt.index) {
			return false
		}
	}
	return true
}

// Apply inserts the construction and records per-index synonyms.
func (t *CompositeConstruct) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	ops := make([]uint32, len(t.Members))
	for i, m := range t.Members {
		ops[i] = uint32(m)
	}
	InsertBefore(pt.block, pt.index, spirv.NewInstr(spirv.OpCompositeConstruct, t.TypeID, t.Fresh, ops...))
	for i, m := range t.Members {
		c.Facts.AddSynonym(fact.At(t.Fresh, uint32(i)), fact.A(m))
	}
}

// CompositeExtract extracts a component of a composite value, recording
// Synonymous(Fresh, Composite[Index]).
type CompositeExtract struct {
	Fresh     spirv.ID `json:"fresh"`
	Composite spirv.ID `json:"composite"`
	Index     uint32   `json:"index"`
	Block     spirv.ID `json:"block"`
	Before    spirv.ID `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *CompositeExtract) Type() string { return TypeCompositeExtractSynonym }

// Precondition: the composite is available at the insertion point and the
// index is in range.
func (t *CompositeExtract) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	typ, ok := c.valueType(t.Composite)
	if !ok {
		return false
	}
	if _, ok := c.Mod.CompositeMemberType(typ, int(t.Index)); !ok {
		return false
	}
	return c.AvailableAt(t.Composite, pt.fn, pt.block, pt.index)
}

// Apply inserts the extraction and records the synonym.
func (t *CompositeExtract) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	typ, _ := c.valueType(t.Composite)
	mt, _ := c.Mod.CompositeMemberType(typ, int(t.Index))
	InsertBefore(pt.block, pt.index,
		spirv.NewInstr(spirv.OpCompositeExtract, mt, t.Fresh, uint32(t.Composite), t.Index))
	c.Facts.AddSynonym(fact.A(t.Fresh), fact.At(t.Composite, t.Index))
}

// ReplaceIdWithSynonym replaces a use of an id with a known-to-be-equal id,
// exploiting Synonymous facts.
type ReplaceIdWithSynonym struct {
	User         spirv.ID `json:"user"`    // result id of the using instruction
	OperandIndex int      `json:"operand"` // index into the user's operand words
	Synonym      spirv.ID `json:"synonym"`
}

// Type implements Transformation.
func (t *ReplaceIdWithSynonym) Type() string { return TypeReplaceIdWithSynonym }

// Precondition: the user exists, the operand is an id operand holding an id
// synonymous (as whole values) with Synonym, the types match, the synonym is
// available at the use, and the user is not a ϕ (availability at ϕs depends
// on the incoming edge, which this transformation does not track).
func (t *ReplaceIdWithSynonym) Precondition(c *Context) bool {
	loc := c.FindInstruction(t.User)
	if loc == nil || loc.Index < 0 {
		return false
	}
	// OpAccessChain indices into structs must stay constants, and OpVariable
	// initializers must stay constants; leave both alone.
	if (loc.Instr.Op == spirv.OpAccessChain && t.OperandIndex >= 1) || loc.Instr.Op == spirv.OpVariable {
		return false
	}
	if !validIDOperand(loc.Instr, t.OperandIndex) {
		return false
	}
	old := spirv.ID(loc.Instr.Operands[t.OperandIndex])
	if old == t.Synonym {
		return false
	}
	oldType, ok := c.valueType(old)
	if !ok {
		return false
	}
	synType, ok := c.valueType(t.Synonym)
	if !ok || synType != oldType {
		return false
	}
	if !c.Facts.AreSynonymous(fact.A(old), fact.A(t.Synonym)) {
		return false
	}
	return c.AvailableAt(t.Synonym, loc.Fn, loc.Block, loc.Index)
}

// Apply swaps the operand.
func (t *ReplaceIdWithSynonym) Apply(c *Context) {
	loc := c.FindInstruction(t.User)
	loc.Instr.Operands[t.OperandIndex] = uint32(t.Synonym)
}

// validIDOperand reports whether word index i of ins is an id-typed operand.
func validIDOperand(ins *spirv.Instruction, i int) bool {
	if i < 0 || i >= len(ins.Operands) {
		return false
	}
	for _, idx := range ins.IDOperandIndices() {
		if idx == i {
			return true
		}
	}
	return false
}

// ReplaceIrrelevantId replaces a use of an id carrying an Irrelevant fact
// with any available id of the same type.
type ReplaceIrrelevantId struct {
	User         spirv.ID `json:"user"`
	OperandIndex int      `json:"operand"`
	Replacement  spirv.ID `json:"replacement"`
}

// Type implements Transformation.
func (t *ReplaceIrrelevantId) Type() string { return TypeReplaceIrrelevantId }

// Precondition: the operand currently holds an Irrelevant id; the
// replacement has the same type and is available at the use.
func (t *ReplaceIrrelevantId) Precondition(c *Context) bool {
	loc := c.FindInstruction(t.User)
	if loc == nil || loc.Index < 0 {
		return false
	}
	if (loc.Instr.Op == spirv.OpAccessChain && t.OperandIndex >= 1) || loc.Instr.Op == spirv.OpVariable {
		return false
	}
	if !validIDOperand(loc.Instr, t.OperandIndex) {
		return false
	}
	old := spirv.ID(loc.Instr.Operands[t.OperandIndex])
	if !c.Facts.IsIrrelevant(old) || old == t.Replacement {
		return false
	}
	oldType, ok := c.valueType(old)
	if !ok {
		return false
	}
	newType, ok := c.valueType(t.Replacement)
	if !ok || newType != oldType {
		return false
	}
	return c.AvailableAt(t.Replacement, loc.Fn, loc.Block, loc.Index)
}

// Apply swaps the operand. The replacement inherits irrelevance at this use
// site only; no new fact is recorded.
func (t *ReplaceIrrelevantId) Apply(c *Context) {
	loc := c.FindInstruction(t.User)
	loc.Instr.Operands[t.OperandIndex] = uint32(t.Replacement)
}

// ReplaceConstantWithUniform exploits the fuzzer's knowledge of the runtime
// values of the module's inputs: a use of a constant whose value equals a
// uniform's known value is replaced by a load of that uniform, obfuscating
// the constant from the compiler (e.g. hiding that a block is dead).
type ReplaceConstantWithUniform struct {
	User         spirv.ID `json:"user"`
	OperandIndex int      `json:"operand"`
	UniformVar   spirv.ID `json:"uniformVar"`
	FreshLoad    spirv.ID `json:"freshLoad"`
}

// Type implements Transformation.
func (t *ReplaceConstantWithUniform) Type() string { return TypeReplaceConstantWithUniform }

// Precondition: the operand holds a scalar constant, the uniform variable's
// input value equals that constant, the types match, and the load can be
// inserted before the user.
func (t *ReplaceConstantWithUniform) Precondition(c *Context) bool {
	if !c.IsFreshID(t.FreshLoad) {
		return false
	}
	loc := c.FindInstruction(t.User)
	if loc == nil || loc.Index < 0 {
		return false
	}
	// Contexts that require a *constant* id operand cannot be obfuscated:
	// OpAccessChain struct indexing and OpVariable initializers.
	if loc.Instr.Op == spirv.OpAccessChain || loc.Instr.Op == spirv.OpVariable {
		return false
	}
	if !validIDOperand(loc.Instr, t.OperandIndex) {
		return false
	}
	constID := spirv.ID(loc.Instr.Operands[t.OperandIndex])
	def := c.Mod.Def(constID)
	if def == nil || !def.Op.IsConstant() {
		return false
	}
	uVal, ok := c.UniformValue(t.UniformVar)
	if !ok || !c.ConstantMatchesValue(constID, uVal) {
		return false
	}
	uDef := c.Mod.Def(t.UniformVar)
	_, pointee, ok := c.Mod.PointerInfo(uDef.Type)
	return ok && pointee == def.Type
}

// Precondition note: the user's operand could also be a branch condition;
// terminators are not body instructions, so FindInstruction's body-only rule
// keeps this transformation on value instructions, matching how spirv-fuzz
// first funnels conditions through value instructions.

// Apply inserts the load and swaps the operand.
func (t *ReplaceConstantWithUniform) Apply(c *Context) {
	c.ClaimID(t.FreshLoad)
	loc := c.FindInstruction(t.User)
	constID := spirv.ID(loc.Instr.Operands[t.OperandIndex])
	def := c.Mod.Def(constID)
	InsertBefore(loc.Block, loc.Index,
		spirv.NewInstr(spirv.OpLoad, def.Type, t.FreshLoad, uint32(t.UniformVar)))
	loc.Instr.Operands[t.OperandIndex] = uint32(t.FreshLoad)
}

// SwapCommutableOperands swaps the operands of a commutative instruction.
type SwapCommutableOperands struct {
	Instr spirv.ID `json:"instr"`
}

// Type implements Transformation.
func (t *SwapCommutableOperands) Type() string { return TypeSwapCommutableOperands }

// Precondition: the instruction exists and its opcode is commutative.
func (t *SwapCommutableOperands) Precondition(c *Context) bool {
	loc := c.FindInstruction(t.Instr)
	if loc == nil || loc.Index < 0 {
		return false
	}
	switch loc.Instr.Op {
	case spirv.OpIAdd, spirv.OpIMul, spirv.OpFAdd, spirv.OpFMul,
		spirv.OpBitwiseAnd, spirv.OpBitwiseOr, spirv.OpBitwiseXor,
		spirv.OpLogicalAnd, spirv.OpLogicalOr, spirv.OpIEqual, spirv.OpINotEqual,
		spirv.OpFOrdEqual, spirv.OpFOrdNotEqual, spirv.OpDot:
		return len(loc.Instr.Operands) == 2
	}
	return false
}

// Apply swaps the operands.
func (t *SwapCommutableOperands) Apply(c *Context) {
	loc := c.FindInstruction(t.Instr)
	loc.Instr.Operands[0], loc.Instr.Operands[1] = loc.Instr.Operands[1], loc.Instr.Operands[0]
}

// AddStore inserts a store of an available value through a pointer. Safe in
// two cases: the fact IrrelevantPointee(Pointer) holds (nothing meaningful
// reads the target), or the enclosing block has a DeadBlock fact.
type AddStore struct {
	Pointer spirv.ID `json:"pointer"`
	Value   spirv.ID `json:"value"`
	Block   spirv.ID `json:"block"`
	Before  spirv.ID `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *AddStore) Type() string { return TypeAddStore }

// Precondition: types match, both ids available at the insertion point, and
// either the pointee is irrelevant or the block is dead.
func (t *AddStore) Precondition(c *Context) bool {
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	if !c.Facts.IsIrrelevantPointee(t.Pointer) && !c.Facts.IsDeadBlock(t.Block) {
		return false
	}
	ptrType, ok := c.valueType(t.Pointer)
	if !ok {
		return false
	}
	_, pointee, ok := c.Mod.PointerInfo(ptrType)
	if !ok {
		return false
	}
	valType, ok := c.valueType(t.Value)
	if !ok || valType != pointee {
		return false
	}
	return c.AvailableAt(t.Pointer, pt.fn, pt.block, pt.index) &&
		c.AvailableAt(t.Value, pt.fn, pt.block, pt.index)
}

// Apply inserts the store.
func (t *AddStore) Apply(c *Context) {
	pt := c.insertion(t.Block, t.Before)
	InsertBefore(pt.block, pt.index,
		spirv.NewInstr(spirv.OpStore, 0, 0, uint32(t.Pointer), uint32(t.Value)))
}

// AddLoad inserts a load through an available pointer into a fresh id.
// Loads have no side effects, so this is safe at any program point; the
// result is marked Irrelevant when the pointee is irrelevant.
type AddLoad struct {
	Fresh   spirv.ID `json:"fresh"`
	Pointer spirv.ID `json:"pointer"`
	Block   spirv.ID `json:"block"`
	Before  spirv.ID `json:"before,omitempty"`
}

// Type implements Transformation.
func (t *AddLoad) Type() string { return TypeAddLoad }

// Precondition: the pointer is available at the insertion point.
func (t *AddLoad) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	pt := c.insertion(t.Block, t.Before)
	if pt == nil {
		return false
	}
	ptrType, ok := c.valueType(t.Pointer)
	if !ok {
		return false
	}
	if _, _, isPtr := c.Mod.PointerInfo(ptrType); !isPtr {
		return false
	}
	return c.AvailableAt(t.Pointer, pt.fn, pt.block, pt.index)
}

// Apply inserts the load.
func (t *AddLoad) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	pt := c.insertion(t.Block, t.Before)
	ptrType, _ := c.valueType(t.Pointer)
	_, pointee, _ := c.Mod.PointerInfo(ptrType)
	InsertBefore(pt.block, pt.index, spirv.NewInstr(spirv.OpLoad, pointee, t.Fresh, uint32(t.Pointer)))
	if c.Facts.IsIrrelevantPointee(t.Pointer) {
		c.Facts.MarkIrrelevant(t.Fresh)
	}
}

func init() {
	register(TypeCopyObject, func() Transformation { return &CopyObject{} })
	register(TypeAddNoOpArithmetic, func() Transformation { return &AddNoOpArithmetic{} })
	register(TypeCompositeConstructSynonym, func() Transformation { return &CompositeConstruct{} })
	register(TypeCompositeExtractSynonym, func() Transformation { return &CompositeExtract{} })
	register(TypeReplaceIdWithSynonym, func() Transformation { return &ReplaceIdWithSynonym{} })
	register(TypeReplaceIrrelevantId, func() Transformation { return &ReplaceIrrelevantId{} })
	register(TypeReplaceConstantWithUniform, func() Transformation { return &ReplaceConstantWithUniform{} })
	register(TypeSwapCommutableOperands, func() Transformation { return &SwapCommutableOperands{} })
	register(TypeAddStore, func() Transformation { return &AddStore{} })
	register(TypeAddLoad, func() Transformation { return &AddLoad{} })
}
