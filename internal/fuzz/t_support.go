package fuzz

import "spirvfuzz/internal/spirv"

// Supporting transformations add types, constants and variables to the
// module. They are "not interesting in isolation, but fuzzer passes
// frequently use them to enable more interesting transformations"
// (Section 3.2); the deduplicator ignores all of them (Section 3.5).

// Transformation type identifiers for supporting transformations.
const (
	TypeAddTypeBool          = "AddTypeBool"
	TypeAddTypeInt           = "AddTypeInt"
	TypeAddTypeFloat         = "AddTypeFloat"
	TypeAddTypeVector        = "AddTypeVector"
	TypeAddTypePointer       = "AddTypePointer"
	TypeAddTypeFunction      = "AddTypeFunction"
	TypeAddConstantBoolean   = "AddConstantBoolean"
	TypeAddConstantScalar    = "AddConstantScalar"
	TypeAddConstantComposite = "AddConstantComposite"
	TypeAddGlobalVariable    = "AddGlobalVariable"
	TypeAddLocalVariable     = "AddLocalVariable"
)

// SupportingTypes is the set of transformation types the deduplicator
// ignores entirely, fixed before running the controlled experiments
// (Section 3.5): the supporting add-type/constant/variable transformations,
// SplitBlock and AddFunction (enablers), and ReplaceIdWithSynonym (reaps the
// benefits of earlier transformations but is uninteresting alone).
func SupportingTypes() map[string]bool {
	return map[string]bool{
		TypeAddTypeBool:          true,
		TypeAddTypeInt:           true,
		TypeAddTypeFloat:         true,
		TypeAddTypeVector:        true,
		TypeAddTypePointer:       true,
		TypeAddTypeFunction:      true,
		TypeAddConstantBoolean:   true,
		TypeAddConstantScalar:    true,
		TypeAddConstantComposite: true,
		TypeAddGlobalVariable:    true,
		TypeAddLocalVariable:     true,
		TypeSplitBlock:           true,
		TypeAddFunction:          true,
		TypeReplaceIdWithSynonym: true,
	}
}

// AddTypeBool adds OpTypeBool with a fresh id (no-op precondition failure if
// the type already exists, keeping types unique).
type AddTypeBool struct {
	Fresh spirv.ID `json:"fresh"`
}

// Type implements Transformation.
func (t *AddTypeBool) Type() string { return TypeAddTypeBool }

// Precondition requires the id fresh and the type absent.
func (t *AddTypeBool) Precondition(c *Context) bool {
	return c.IsFreshID(t.Fresh) && c.Mod.FindTypeBool() == 0
}

// Apply adds the type.
func (t *AddTypeBool) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpTypeBool, 0, t.Fresh))
}

// AddTypeInt adds OpTypeInt.
type AddTypeInt struct {
	Fresh  spirv.ID `json:"fresh"`
	Width  uint32   `json:"width"`
	Signed bool     `json:"signed"`
}

// Type implements Transformation.
func (t *AddTypeInt) Type() string { return TypeAddTypeInt }

// Precondition requires the id fresh and the exact type absent.
func (t *AddTypeInt) Precondition(c *Context) bool {
	return c.IsFreshID(t.Fresh) && t.Width == 32 && c.Mod.FindTypeInt(t.Width, t.Signed) == 0
}

// Apply adds the type.
func (t *AddTypeInt) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	s := uint32(0)
	if t.Signed {
		s = 1
	}
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpTypeInt, 0, t.Fresh, t.Width, s))
}

// AddTypeFloat adds OpTypeFloat.
type AddTypeFloat struct {
	Fresh spirv.ID `json:"fresh"`
	Width uint32   `json:"width"`
}

// Type implements Transformation.
func (t *AddTypeFloat) Type() string { return TypeAddTypeFloat }

// Precondition requires the id fresh and the type absent.
func (t *AddTypeFloat) Precondition(c *Context) bool {
	return c.IsFreshID(t.Fresh) && t.Width == 32 && c.Mod.FindTypeFloat(t.Width) == 0
}

// Apply adds the type.
func (t *AddTypeFloat) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpTypeFloat, 0, t.Fresh, t.Width))
}

// AddTypeVector adds OpTypeVector over an existing scalar type.
type AddTypeVector struct {
	Fresh spirv.ID `json:"fresh"`
	Elem  spirv.ID `json:"elem"`
	N     int      `json:"n"`
}

// Type implements Transformation.
func (t *AddTypeVector) Type() string { return TypeAddTypeVector }

// Precondition requires a fresh id, an existing scalar element type, a legal
// size and the exact type absent.
func (t *AddTypeVector) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) || t.N < 2 || t.N > 4 {
		return false
	}
	if !c.Mod.IsNumericScalarType(t.Elem) && !c.Mod.IsBoolType(t.Elem) {
		return false
	}
	return c.Mod.FindTypeVector(t.Elem, t.N) == 0
}

// Apply adds the type.
func (t *AddTypeVector) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals,
		spirv.NewInstr(spirv.OpTypeVector, 0, t.Fresh, uint32(t.Elem), uint32(t.N)))
}

// AddTypePointer adds OpTypePointer to an existing type.
type AddTypePointer struct {
	Fresh   spirv.ID `json:"fresh"`
	Storage uint32   `json:"storage"`
	Pointee spirv.ID `json:"pointee"`
}

// Type implements Transformation.
func (t *AddTypePointer) Type() string { return TypeAddTypePointer }

// Precondition requires a fresh id, an existing pointee type and the exact
// pointer type absent.
func (t *AddTypePointer) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	if c.Mod.TypeOp(t.Pointee) == spirv.OpNop {
		return false
	}
	return c.Mod.FindTypePointer(t.Storage, t.Pointee) == 0
}

// Apply adds the type.
func (t *AddTypePointer) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals,
		spirv.NewInstr(spirv.OpTypePointer, 0, t.Fresh, t.Storage, uint32(t.Pointee)))
}

// AddTypeFunction adds OpTypeFunction over existing types.
type AddTypeFunction struct {
	Fresh  spirv.ID   `json:"fresh"`
	Return spirv.ID   `json:"return"`
	Params []spirv.ID `json:"params,omitempty"`
}

// Type implements Transformation.
func (t *AddTypeFunction) Type() string { return TypeAddTypeFunction }

// Precondition requires a fresh id, existing component types and the exact
// function type absent.
func (t *AddTypeFunction) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) || c.Mod.TypeOp(t.Return) == spirv.OpNop {
		return false
	}
	for _, p := range t.Params {
		if c.Mod.TypeOp(p) == spirv.OpNop {
			return false
		}
	}
	return c.Mod.FindTypeFunction(t.Return, t.Params...) == 0
}

// Apply adds the type.
func (t *AddTypeFunction) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	ops := []uint32{uint32(t.Return)}
	for _, p := range t.Params {
		ops = append(ops, uint32(p))
	}
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpTypeFunction, 0, t.Fresh, ops...))
}

// AddConstantBoolean adds OpConstantTrue/False.
type AddConstantBoolean struct {
	Fresh spirv.ID `json:"fresh"`
	Value bool     `json:"value"`
}

// Type implements Transformation.
func (t *AddConstantBoolean) Type() string { return TypeAddConstantBoolean }

// Precondition requires a fresh id, the bool type present and the constant
// absent.
func (t *AddConstantBoolean) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) || c.Mod.FindTypeBool() == 0 {
		return false
	}
	for _, ins := range c.Mod.TypesGlobals {
		if (t.Value && ins.Op == spirv.OpConstantTrue) || (!t.Value && ins.Op == spirv.OpConstantFalse) {
			return false
		}
	}
	return true
}

// Apply adds the constant.
func (t *AddConstantBoolean) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	op := spirv.OpConstantFalse
	if t.Value {
		op = spirv.OpConstantTrue
	}
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(op, c.Mod.FindTypeBool(), t.Fresh))
}

// AddConstantScalar adds an OpConstant of an existing numeric scalar type.
type AddConstantScalar struct {
	Fresh  spirv.ID `json:"fresh"`
	TypeID spirv.ID `json:"typeId"`
	Word   uint32   `json:"word"`
}

// Type implements Transformation.
func (t *AddConstantScalar) Type() string { return TypeAddConstantScalar }

// Precondition requires a fresh id, an existing numeric scalar type, and no
// identical constant.
func (t *AddConstantScalar) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) || !c.Mod.IsNumericScalarType(t.TypeID) {
		return false
	}
	for _, ins := range c.Mod.TypesGlobals {
		if ins.Op == spirv.OpConstant && ins.Type == t.TypeID && len(ins.Operands) == 1 && ins.Operands[0] == t.Word {
			return false
		}
	}
	return true
}

// Apply adds the constant.
func (t *AddConstantScalar) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpConstant, t.TypeID, t.Fresh, t.Word))
}

// AddConstantComposite adds an OpConstantComposite from existing constants.
type AddConstantComposite struct {
	Fresh   spirv.ID   `json:"fresh"`
	TypeID  spirv.ID   `json:"typeId"`
	Members []spirv.ID `json:"members"`
}

// Type implements Transformation.
func (t *AddConstantComposite) Type() string { return TypeAddConstantComposite }

// Precondition requires a fresh id, a composite type whose member types
// match the (constant) members.
func (t *AddConstantComposite) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	n, ok := c.Mod.CompositeMemberCount(t.TypeID)
	if !ok || n != len(t.Members) {
		return false
	}
	for i, mid := range t.Members {
		def := c.Mod.Def(mid)
		if def == nil || !def.Op.IsConstant() {
			return false
		}
		want, _ := c.Mod.CompositeMemberType(t.TypeID, i)
		if def.Type != want {
			return false
		}
	}
	return true
}

// Apply adds the constant.
func (t *AddConstantComposite) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	ops := make([]uint32, len(t.Members))
	for i, m := range t.Members {
		ops[i] = uint32(m)
	}
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals, spirv.NewInstr(spirv.OpConstantComposite, t.TypeID, t.Fresh, ops...))
}

// AddGlobalVariable adds a Private-storage module-scope variable. Its
// contents never influence the result (nothing reads it until some
// transformation stores to it, and only irrelevant loads read it back), so
// the variable gets an IrrelevantPointee fact.
type AddGlobalVariable struct {
	Fresh   spirv.ID `json:"fresh"`
	PtrType spirv.ID `json:"ptrType"`
}

// Type implements Transformation.
func (t *AddGlobalVariable) Type() string { return TypeAddGlobalVariable }

// Precondition requires a fresh id and an existing Private-storage pointer
// type.
func (t *AddGlobalVariable) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	storage, _, ok := c.Mod.PointerInfo(t.PtrType)
	return ok && storage == spirv.StoragePrivate
}

// Apply adds the variable and the IrrelevantPointee fact.
func (t *AddGlobalVariable) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	c.Mod.TypesGlobals = append(c.Mod.TypesGlobals,
		spirv.NewInstr(spirv.OpVariable, t.PtrType, t.Fresh, spirv.StoragePrivate))
	c.Facts.MarkIrrelevantPointee(t.Fresh)
}

// AddLocalVariable adds a Function-storage variable at the start of a
// function's entry block, with an IrrelevantPointee fact.
type AddLocalVariable struct {
	Fresh    spirv.ID `json:"fresh"`
	PtrType  spirv.ID `json:"ptrType"`
	Function spirv.ID `json:"function"`
}

// Type implements Transformation.
func (t *AddLocalVariable) Type() string { return TypeAddLocalVariable }

// Precondition requires a fresh id, an existing Function-storage pointer
// type and an existing function.
func (t *AddLocalVariable) Precondition(c *Context) bool {
	if !c.IsFreshID(t.Fresh) {
		return false
	}
	storage, _, ok := c.Mod.PointerInfo(t.PtrType)
	if !ok || storage != spirv.StorageFunction {
		return false
	}
	return c.Mod.Function(t.Function) != nil
}

// Apply inserts the variable at the top of the entry block.
func (t *AddLocalVariable) Apply(c *Context) {
	c.ClaimID(t.Fresh)
	fn := c.Mod.Function(t.Function)
	ins := spirv.NewInstr(spirv.OpVariable, t.PtrType, t.Fresh, spirv.StorageFunction)
	InsertBefore(fn.Entry(), 0, ins)
	c.Facts.MarkIrrelevantPointee(t.Fresh)
}

func init() {
	register(TypeAddTypeBool, func() Transformation { return &AddTypeBool{} })
	register(TypeAddTypeInt, func() Transformation { return &AddTypeInt{} })
	register(TypeAddTypeFloat, func() Transformation { return &AddTypeFloat{} })
	register(TypeAddTypeVector, func() Transformation { return &AddTypeVector{} })
	register(TypeAddTypePointer, func() Transformation { return &AddTypePointer{} })
	register(TypeAddTypeFunction, func() Transformation { return &AddTypeFunction{} })
	register(TypeAddConstantBoolean, func() Transformation { return &AddConstantBoolean{} })
	register(TypeAddConstantScalar, func() Transformation { return &AddConstantScalar{} })
	register(TypeAddConstantComposite, func() Transformation { return &AddConstantComposite{} })
	register(TypeAddGlobalVariable, func() Transformation { return &AddGlobalVariable{} })
	register(TypeAddLocalVariable, func() Transformation { return &AddLocalVariable{} })
}
