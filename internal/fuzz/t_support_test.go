package fuzz_test

import (
	"testing"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/testmod"
)

// ctxOf builds a fuzzing context over a fresh module.
func ctxOf(m *spirv.Module) *fuzz.Context {
	return fuzz.NewContext(m, interp.Inputs{W: 4, H: 4})
}

// applyOK asserts the precondition holds, applies, and validates the module.
func applyOK(t *testing.T, c *fuzz.Context, tr fuzz.Transformation) {
	t.Helper()
	if !tr.Precondition(c) {
		t.Fatalf("%s: precondition does not hold", tr.Type())
	}
	tr.Apply(c)
	if err := validate.Module(c.Mod); err != nil {
		t.Fatalf("%s: module invalid after apply: %v\n%s", tr.Type(), err, c.Mod)
	}
}

// rejected asserts the precondition fails.
func rejected(t *testing.T, c *fuzz.Context, tr fuzz.Transformation) {
	t.Helper()
	if tr.Precondition(c) {
		t.Fatalf("%s: precondition unexpectedly holds: %+v", tr.Type(), tr)
	}
}

func TestAddTypeTransformations(t *testing.T) {
	m := spirv.NewModule()
	c := ctxOf(m)

	applyOK(t, c, &fuzz.AddTypeBool{Fresh: m.Bound})
	rejected(t, c, &fuzz.AddTypeBool{Fresh: m.Bound}) // duplicate type
	boolT := m.FindTypeBool()

	applyOK(t, c, &fuzz.AddTypeInt{Fresh: m.Bound, Width: 32, Signed: true})
	rejected(t, c, &fuzz.AddTypeInt{Fresh: m.Bound, Width: 64, Signed: true}) // unsupported width
	rejected(t, c, &fuzz.AddTypeInt{Fresh: m.Bound, Width: 32, Signed: true}) // duplicate
	applyOK(t, c, &fuzz.AddTypeInt{Fresh: m.Bound, Width: 32, Signed: false}) // distinct signedness
	intT := m.FindTypeInt(32, true)

	applyOK(t, c, &fuzz.AddTypeFloat{Fresh: m.Bound, Width: 32})
	floatT := m.FindTypeFloat(32)

	applyOK(t, c, &fuzz.AddTypeVector{Fresh: m.Bound, Elem: floatT, N: 4})
	rejected(t, c, &fuzz.AddTypeVector{Fresh: m.Bound, Elem: floatT, N: 5}) // size
	rejected(t, c, &fuzz.AddTypeVector{Fresh: m.Bound, Elem: 9999, N: 2})   // missing elem
	rejected(t, c, &fuzz.AddTypeVector{Fresh: m.Bound, Elem: floatT, N: 4}) // duplicate
	rejected(t, c, &fuzz.AddTypeVector{Fresh: boolT, Elem: floatT, N: 3})   // non-fresh id

	applyOK(t, c, &fuzz.AddTypePointer{Fresh: m.Bound, Storage: spirv.StorageFunction, Pointee: intT})
	rejected(t, c, &fuzz.AddTypePointer{Fresh: m.Bound, Storage: spirv.StorageFunction, Pointee: 9999})

	applyOK(t, c, &fuzz.AddTypeFunction{Fresh: m.Bound, Return: floatT, Params: []spirv.ID{floatT, intT}})
	rejected(t, c, &fuzz.AddTypeFunction{Fresh: m.Bound, Return: floatT, Params: []spirv.ID{floatT, intT}})
	rejected(t, c, &fuzz.AddTypeFunction{Fresh: m.Bound, Return: 12345})
}

func TestAddConstantTransformations(t *testing.T) {
	m := spirv.NewModule()
	c := ctxOf(m)
	rejected(t, c, &fuzz.AddConstantBoolean{Fresh: m.Bound, Value: true}) // bool type missing
	applyOK(t, c, &fuzz.AddTypeBool{Fresh: m.Bound})
	applyOK(t, c, &fuzz.AddConstantBoolean{Fresh: m.Bound, Value: true})
	rejected(t, c, &fuzz.AddConstantBoolean{Fresh: m.Bound, Value: true}) // duplicate
	applyOK(t, c, &fuzz.AddConstantBoolean{Fresh: m.Bound, Value: false})

	applyOK(t, c, &fuzz.AddTypeInt{Fresh: m.Bound, Width: 32, Signed: true})
	intT := m.FindTypeInt(32, true)
	applyOK(t, c, &fuzz.AddConstantScalar{Fresh: m.Bound, TypeID: intT, Word: 7})
	rejected(t, c, &fuzz.AddConstantScalar{Fresh: m.Bound, TypeID: intT, Word: 7}) // duplicate value
	rejected(t, c, &fuzz.AddConstantScalar{Fresh: m.Bound, TypeID: 9999, Word: 1}) // bad type
	seven, _ := m.ConstantIntValue(m.Bound - 1)
	if seven != 7 {
		t.Fatalf("constant value = %d", seven)
	}

	applyOK(t, c, &fuzz.AddTypeFloat{Fresh: m.Bound, Width: 32})
	floatT := m.FindTypeFloat(32)
	applyOK(t, c, &fuzz.AddTypeVector{Fresh: m.Bound, Elem: floatT, N: 2})
	vec2 := m.FindTypeVector(floatT, 2)
	applyOK(t, c, &fuzz.AddConstantScalar{Fresh: m.Bound, TypeID: floatT, Word: 0})
	zeroF := m.Bound - 1
	applyOK(t, c, &fuzz.AddConstantComposite{Fresh: m.Bound, TypeID: vec2, Members: []spirv.ID{zeroF, zeroF}})
	rejected(t, c, &fuzz.AddConstantComposite{Fresh: m.Bound, TypeID: vec2, Members: []spirv.ID{zeroF}})       // arity
	rejected(t, c, &fuzz.AddConstantComposite{Fresh: m.Bound, TypeID: vec2, Members: []spirv.ID{zeroF, intT}}) // member not a constant
	rejected(t, c, &fuzz.AddConstantComposite{Fresh: m.Bound, TypeID: floatT, Members: []spirv.ID{zeroF}})     // not composite
}

func TestAddVariableTransformations(t *testing.T) {
	m := testmod.Diamond()
	c := ctxOf(m)
	f32 := m.EnsureTypeFloat(32)

	// Global: requires a Private-storage pointer type.
	rejected(t, c, &fuzz.AddGlobalVariable{Fresh: m.Bound, PtrType: f32}) // not a pointer
	applyOK(t, c, &fuzz.AddTypePointer{Fresh: m.Bound, Storage: spirv.StoragePrivate, Pointee: f32})
	privPtr := m.Bound - 1
	applyOK(t, c, &fuzz.AddGlobalVariable{Fresh: m.Bound, PtrType: privPtr})
	gvar := m.Bound - 1
	if !c.Facts.IsIrrelevantPointee(gvar) {
		t.Fatal("global variable should carry IrrelevantPointee")
	}
	// Function-storage pointer is rejected for globals.
	fnPtr := m.EnsureTypePointer(spirv.StorageFunction, f32)
	rejected(t, c, &fuzz.AddGlobalVariable{Fresh: m.Bound, PtrType: fnPtr})

	// Local: lands at the top of the function's entry block.
	fn := m.EntryPointFunction()
	entryLen := len(fn.Entry().Body)
	applyOK(t, c, &fuzz.AddLocalVariable{Fresh: m.Bound, PtrType: fnPtr, Function: fn.ID()})
	lvar := m.Bound - 1
	if fn.Entry().Body[0].Result != lvar {
		t.Fatal("local variable must be first in the entry block")
	}
	if len(fn.Entry().Body) != entryLen+1 {
		t.Fatal("exactly one instruction added")
	}
	if !c.Facts.IsIrrelevantPointee(lvar) {
		t.Fatal("local variable should carry IrrelevantPointee")
	}
	rejected(t, c, &fuzz.AddLocalVariable{Fresh: m.Bound, PtrType: privPtr, Function: fn.ID()}) // wrong storage
	rejected(t, c, &fuzz.AddLocalVariable{Fresh: m.Bound, PtrType: fnPtr, Function: 9999})      // missing function
}

// TestSupportingTypesListMatchesSectionThreeFive pins the dedup ignore list.
func TestSupportingTypesListMatchesSectionThreeFive(t *testing.T) {
	sup := fuzz.SupportingTypes()
	for _, want := range []string{
		fuzz.TypeSplitBlock, fuzz.TypeAddFunction, fuzz.TypeReplaceIdWithSynonym,
		fuzz.TypeAddTypeBool, fuzz.TypeAddConstantScalar, fuzz.TypeAddLocalVariable,
	} {
		if !sup[want] {
			t.Errorf("supporting list missing %s", want)
		}
	}
	for _, interesting := range []string{
		fuzz.TypeAddDeadBlock, fuzz.TypeReplaceBranchWithKill, fuzz.TypeMoveBlockDown,
		fuzz.TypeInlineFunction, fuzz.TypeSetFunctionControl, fuzz.TypePropagateInstructionUp,
		fuzz.TypeWrapRegionInSelection, fuzz.TypeFunctionCall,
	} {
		if sup[interesting] {
			t.Errorf("%s must not be ignored by deduplication", interesting)
		}
	}
	// Every supporting type must be a registered transformation type.
	reg := map[string]bool{}
	for _, name := range fuzz.RegisteredTypes() {
		reg[name] = true
	}
	for name := range sup {
		if !reg[name] {
			t.Errorf("supporting type %s is not registered", name)
		}
	}
}
