// Package fuzz implements spirv-fuzz: the transformation-based fuzzer of
// Section 3. It instantiates the generic engine of package core for the
// SPIR-V subset, providing 34 transformation types with explicit
// preconditions and effects over (module, inputs, facts) contexts, fuzzer
// passes that probabilistically apply them, and the recommendations strategy
// for chaining related passes. Beyond the paper's transformations it also
// implements the conclusion's first future-work item — a transformation
// (ScaleUniform) that modifies the module and its input in sync — and a
// deliberately flawed SplitBlockAtOffset used by design-principle ablations.
package fuzz

import (
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fact"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// Context is the transformation context (Definition 2.3) for SPIR-V: the
// module, the inputs on which it executes, and the facts established so far.
type Context struct {
	Mod    *spirv.Module
	Inputs interp.Inputs
	Facts  *fact.Set
}

// Transformation is the SPIR-V instantiation of the engine's interface.
type Transformation = core.Transformation[*Context]

// NewContext returns a context with an empty fact set. The inputs are
// deep-copied: transformations may modify them in sync with the module.
func NewContext(m *spirv.Module, in interp.Inputs) *Context {
	return &Context{Mod: m, Inputs: in.Clone(), Facts: fact.NewSet()}
}

// Clone deep-copies the context, including the inputs: transformations like
// ScaleUniform modify the module and its input in sync (the paper's first
// item of future work), so replays must start from pristine inputs.
func (c *Context) Clone() *Context {
	return &Context{Mod: c.Mod.Clone(), Inputs: c.Inputs.Clone(), Facts: c.Facts.Clone()}
}

// Locus identifies where an instruction lives.
type Locus struct {
	Fn    *spirv.Function
	Block *spirv.Block
	// Index into Block.Body, or -1 if the instruction is a ϕ.
	Index int
	Instr *spirv.Instruction
}

// FindInstruction locates the body or ϕ instruction with result id, or nil.
func (c *Context) FindInstruction(id spirv.ID) *Locus {
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			for i, ins := range b.Body {
				if ins.Result == id {
					return &Locus{Fn: fn, Block: b, Index: i, Instr: ins}
				}
			}
			for _, p := range b.Phis {
				if p.Result == id {
					return &Locus{Fn: fn, Block: b, Index: -1, Instr: p}
				}
			}
		}
	}
	return nil
}

// FindBlock locates the block with the given label across all functions.
func (c *Context) FindBlock(label spirv.ID) (*spirv.Function, *spirv.Block) {
	for _, fn := range c.Mod.Functions {
		if b := fn.Block(label); b != nil {
			return fn, b
		}
	}
	return nil, nil
}

// IsFreshID reports whether id is unused in the module (and nonzero).
func (c *Context) IsFreshID(id spirv.ID) bool {
	if id == 0 {
		return false
	}
	if c.Mod.Def(id) != nil {
		return false
	}
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			if b.Label == id {
				return false
			}
		}
	}
	return true
}

// FreshAll reports whether all ids are fresh and pairwise distinct. Unlike a
// loop over IsFreshID — a full module scan per id — it walks the module once.
func (c *Context) FreshAll(ids ...spirv.ID) bool {
	seen := make(map[spirv.ID]bool, len(ids))
	for _, id := range ids {
		if id == 0 || seen[id] {
			return false
		}
		seen[id] = true
	}
	defined := c.DefinedIDs()
	for _, id := range ids {
		if defined[id] {
			return false
		}
	}
	return true
}

// DefinedIDs returns the set of every id the module currently defines:
// instruction results and block labels — exactly the ids IsFreshID rejects.
// Preconditions that validate many ids at once (AddFunction checks every id
// of an encoded function body) build this set in one module walk instead of
// paying a full scan per id.
func (c *Context) DefinedIDs() map[spirv.ID]bool {
	defined := make(map[spirv.ID]bool, c.Mod.InstructionCount()+16)
	c.Mod.ForEachInstruction(func(ins *spirv.Instruction) {
		if ins.Result != 0 {
			defined[ins.Result] = true
		}
	})
	for _, fn := range c.Mod.Functions {
		for _, b := range fn.Blocks {
			defined[b.Label] = true
		}
	}
	return defined
}

// ClaimID raises the module bound to cover id. Effects call this for every
// fresh id they introduce, since during replay the original module's bound
// is below the ids the fuzzer allocated later.
func (c *Context) ClaimID(id spirv.ID) {
	if id >= c.Mod.Bound {
		c.Mod.Bound = id + 1
	}
}

// AvailableAt reports whether id can be used by the instruction at body
// index pos of block blk in function fn (per SSA dominance rules).
func (c *Context) AvailableAt(id spirv.ID, fn *spirv.Function, blk *spirv.Block, bodyIndex int) bool {
	info := cfa.Analyze(c.Mod, fn)
	return info.AvailableAt(id, blk.Label, info.PosOf(blk, bodyIndex))
}

// InsertBefore inserts ins into blk.Body at index i.
func InsertBefore(blk *spirv.Block, i int, ins *spirv.Instruction) {
	blk.Body = append(blk.Body[:i:i], append([]*spirv.Instruction{ins}, blk.Body[i:]...)...)
}

// RemoveBodyAt removes the body instruction at index i.
func RemoveBodyAt(blk *spirv.Block, i int) {
	blk.Body = append(blk.Body[:i], blk.Body[i+1:]...)
}

// InsertBlockAfter inserts nb into fn.Blocks immediately after block b.
func InsertBlockAfter(fn *spirv.Function, b *spirv.Block, nb *spirv.Block) {
	for i, blk := range fn.Blocks {
		if blk == b {
			rest := append([]*spirv.Block{nb}, fn.Blocks[i+1:]...)
			fn.Blocks = append(fn.Blocks[:i+1:i+1], rest...)
			return
		}
	}
	fn.Blocks = append(fn.Blocks, nb)
}

// EntryPointIDs returns the ids of functions named by entry points; these
// functions cannot gain parameters.
func (c *Context) EntryPointIDs() map[spirv.ID]bool {
	out := make(map[spirv.ID]bool)
	for _, ep := range c.Mod.EntryPoints {
		out[spirv.ID(ep.Operands[1])] = true
	}
	return out
}

// UniformValue returns the input value of the uniform variable with the
// given id, resolved through its OpName, with ok=false when the variable is
// not a uniform or has no provided value.
func (c *Context) UniformValue(varID spirv.ID) (interp.Value, bool) {
	def := c.Mod.Def(varID)
	if def == nil || def.Op != spirv.OpVariable {
		return interp.Value{}, false
	}
	if sc := def.Operands[0]; sc != spirv.StorageUniformConstant && sc != spirv.StorageUniform {
		return interp.Value{}, false
	}
	for _, n := range c.Mod.Names {
		if n.Op == spirv.OpName && spirv.ID(n.Operands[0]) == varID {
			name, _ := spirv.DecodeString(n.Operands[1:])
			v, ok := c.Inputs.Uniforms[name]
			return v, ok
		}
	}
	return interp.Value{}, false
}

// ConstantMatchesValue reports whether constant id c holds exactly the
// runtime value v.
func (c *Context) ConstantMatchesValue(constID spirv.ID, v interp.Value) bool {
	switch v.Kind {
	case interp.KindBool:
		b, ok := c.Mod.ConstantBoolValue(constID)
		return ok && b == v.B
	case interp.KindInt:
		def := c.Mod.Def(constID)
		return def != nil && def.Op == spirv.OpConstant && len(def.Operands) == 1 &&
			c.Mod.IsIntType(def.Type) && def.Operands[0] == v.Bits
	case interp.KindFloat:
		f, ok := c.Mod.ConstantFloatValue(constID)
		return ok && f == v.F && (f != 0 || v.F != 0 || signbit32(f) == signbit32(v.F))
	}
	return false
}

func signbit32(f float32) bool { return f < 0 || (f == 0 && 1/f < 0) }
