// Package service is the campaign job system behind the spirvd daemon: it
// owns the full pipeline of the paper — fuzz → run → reduce → dedup
// (Sections 3.2–3.5) — as durable jobs over the internal/store journal and
// the internal/runner execution engine.
//
// Every pipeline step is deterministic (seeded fuzzing, memoized target
// execution, worker-count-invariant parallel reduction, stable
// deduplication), so durability reduces to bookkeeping: the journal records
// which steps completed, artifacts live in the content-addressed blob store,
// and a restarted daemon replays the journal, skips completed steps, and
// recomputes the rest — ending with buckets bitwise-identical to an
// uninterrupted run.
package service

import (
	"encoding/json"
	"fmt"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/store"
	"spirvfuzz/internal/target"
)

// CampaignSpec is the user-supplied description of a campaign
// (POST /campaigns). The zero value of each optional field selects a
// default; Normalize resolves them so the journaled spec is self-contained.
type CampaignSpec struct {
	// Tool is the fuzzer configuration: "spirv-fuzz" (default) or
	// "spirv-fuzz-simple" (recommendations disabled). glsl-fuzz produces no
	// transformation sequences and cannot feed the reduction pipeline.
	Tool string `json:"tool,omitempty"`
	// Tests is the number of generated tests; required.
	Tests int `json:"tests"`
	// SeedBase offsets the per-test seeds (test i uses SeedBase + i). When 0,
	// the tool's harness offset is used so configurations draw disjoint seeds.
	SeedBase int64 `json:"seed_base,omitempty"`
	// Targets restricts the campaign to the named targets; empty selects all
	// Table 2 targets.
	Targets []string `json:"targets,omitempty"`
	// CapPerSignature bounds how many bugs per (target, signature) pair enter
	// reduction — reduction is the expensive stage and duplicates past the
	// cap add nothing to deduplication. Default 2.
	CapPerSignature int `json:"cap_per_signature,omitempty"`
	// ReduceSlowdownMS sleeps this long before every interestingness query
	// during reduction. A pacing knob for tests that must interrupt a daemon
	// mid-reduction; it alters timing only, never results. Default 0.
	ReduceSlowdownMS int `json:"reduce_slowdown_ms,omitempty"`
	// FuzzSlowdownMS sleeps this long before each fuzz test. Like
	// ReduceSlowdownMS it is a pacing knob for interruption and pipelining
	// tests — timing only, never results. Default 0.
	FuzzSlowdownMS int `json:"fuzz_slowdown_ms,omitempty"`
	// CrossBucketPrecheck opts the reduce stage into the cross-bucket
	// pre-check: cases run serially in selection order, and before a case is
	// reduced, every earlier case's minimized variant is tried against its
	// interestingness test — a hit means the earlier report already exhibits
	// this case's (target, signature), so the expensive reduction is skipped
	// and the case journaled as covered by the earlier one. Serial by design
	// (each verdict depends on the minimized variants before it), so the
	// cluster coordinator rejects it. Default false.
	CrossBucketPrecheck bool `json:"cross_bucket_precheck,omitempty"`
}

// Campaign states, in pipeline order. Bisect jobs reuse StatePending,
// StateDone and StateFailed and add StateBisecting as their running state.
const (
	StatePending   = "pending"
	StateFuzzing   = "fuzzing"
	StateReducing  = "reducing"
	StateBucketing = "bucketing"
	StateBisecting = "bisecting"
	StateDone      = "done"
	StateFailed    = "failed"
)

// Normalize validates the spec and resolves defaults in place, so that the
// journaled spec replays identically on resume.
func (sp *CampaignSpec) Normalize() error {
	switch sp.Tool {
	case "":
		sp.Tool = string(harness.ToolSpirvFuzz)
	case string(harness.ToolSpirvFuzz), string(harness.ToolSpirvFuzzSimple):
	default:
		return fmt.Errorf("service: unsupported tool %q", sp.Tool)
	}
	if sp.Tests < 1 || sp.Tests > 1_000_000 {
		return fmt.Errorf("service: tests must be in [1, 1000000], got %d", sp.Tests)
	}
	if sp.SeedBase == 0 && sp.Tool == string(harness.ToolSpirvFuzzSimple) {
		sp.SeedBase = 1 << 32 // the harness offset for the simple configuration
	}
	if sp.CapPerSignature == 0 {
		sp.CapPerSignature = 2
	}
	if sp.CapPerSignature < 0 {
		return fmt.Errorf("service: cap_per_signature must be >= 0")
	}
	if sp.ReduceSlowdownMS < 0 || sp.ReduceSlowdownMS > 60_000 {
		return fmt.Errorf("service: reduce_slowdown_ms must be in [0, 60000]")
	}
	if sp.FuzzSlowdownMS < 0 || sp.FuzzSlowdownMS > 60_000 {
		return fmt.Errorf("service: fuzz_slowdown_ms must be in [0, 60000]")
	}
	if len(sp.Targets) == 0 {
		for _, tg := range target.All() {
			sp.Targets = append(sp.Targets, tg.Name)
		}
		return nil
	}
	seen := map[string]bool{}
	for _, name := range sp.Targets {
		if target.ByName(name) == nil {
			return fmt.Errorf("service: unknown target %q", name)
		}
		if seen[name] {
			return fmt.Errorf("service: duplicate target %q", name)
		}
		seen[name] = true
	}
	return nil
}

// CampaignStatus is the public snapshot of one campaign (GET /campaigns/{id}).
type CampaignStatus struct {
	ID    string       `json:"id"`
	State string       `json:"state"`
	Spec  CampaignSpec `json:"spec"`
	// TestsDone counts generated-and-classified tests, including ones
	// satisfied from the journal on resume.
	TestsDone int `json:"tests_done"`
	// Bugs counts (test, target) bug findings.
	Bugs int `json:"bugs"`
	// ReduceTotal is the number of bugs selected for reduction (after the
	// per-signature cap); Reduced counts completed reductions.
	ReduceTotal int `json:"reduce_total"`
	Reduced     int `json:"reduced"`
	// Buckets is the number of recommended reports; nonzero only once done.
	Buckets int `json:"buckets"`
	// SkippedTests and SkippedReductions count pipeline steps that were
	// satisfied from the journal instead of being re-run — the checkpoint
	// reuse the resume e2e test asserts on.
	SkippedTests      int `json:"skipped_tests"`
	SkippedReductions int `json:"skipped_reductions"`
	// CoveredReductions counts reductions the cross-bucket pre-check skipped
	// because an earlier case's minimized variant already exhibited this
	// case's (target, signature). Always 0 without CrossBucketPrecheck.
	CoveredReductions int    `json:"covered_reductions,omitempty"`
	Error             string `json:"error,omitempty"`
	// MemoHits and MemoMisses are this campaign's slice of the persistent
	// memo tier: engine-counter deltas over the pipeline's run window.
	// They are observability only (never journaled, zero after a resume,
	// approximate under concurrent campaigns) and both zero when the
	// daemon runs without a memo store.
	MemoHits   uint64 `json:"memo_hits,omitempty"`
	MemoMisses uint64 `json:"memo_misses,omitempty"`
}

// Bucket is one recommended bug report (Section 3.5): the representative of
// a set of reduced tests that share transformation types. Buckets for one
// campaign are pairwise disjoint in (non-supporting) transformation types.
type Bucket struct {
	Target    string `json:"target"`
	Case      string `json:"case"`
	Signature string `json:"signature"`
	// Types is the sorted residual transformation-type set after removing
	// supporting types — the deduplication key.
	Types []string `json:"types"`
	// SequenceLen is the minimized sequence length; Delta the instruction-
	// count delta of Section 4.2.
	SequenceLen int `json:"sequence_len"`
	Delta       int `json:"delta"`
	// ReportHash addresses the full reduced report blob (GET /reports/{hash}).
	ReportHash string `json:"report_hash"`
}

// BucketSet is one campaign's recommended reports (GET /buckets).
type BucketSet struct {
	Campaign string   `json:"campaign"`
	Buckets  []Bucket `json:"buckets"`
}

// BisectSpec is the user-supplied description of a bisection job
// (POST /bisect): run the second dedup signal over every reduced case of a
// finished campaign, binary-searching each case's target release history for
// the first release that exhibits the bug.
type BisectSpec struct {
	// Campaign names the finished campaign whose reduced cases to bisect.
	Campaign string `json:"campaign"`
}

// BisectOutcome is one case's bisection verdict as journaled by a
// case_bisected record. Deterministic in the case alone: FirstBad is
// identical at any worker count, lane width, or cache temperature, and under
// cluster sharding.
type BisectOutcome struct {
	Case      string `json:"case"`
	Target    string `json:"target"`
	Signature string `json:"signature"`
	FirstBad  string `json:"first_bad"`
	Queries   int    `json:"queries"`
	CacheHits int    `json:"cache_hits"`
}

// BisectStatus is the public snapshot of one bisection job
// (GET /bisect/{id}).
type BisectStatus struct {
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	State    string `json:"state"`
	// CasesTotal is the number of reduced cases to bisect (0 until the job
	// lists them); CasesDone counts completed bisections, including ones
	// satisfied from the journal on resume (SkippedCases of them).
	CasesTotal   int    `json:"cases_total"`
	CasesDone    int    `json:"cases_done"`
	SkippedCases int    `json:"skipped_cases"`
	Error        string `json:"error,omitempty"`
}

// BisectSet is a finished bisection job's result (GET /bisect/{id}/result):
// every outcome in the campaign's canonical case order, plus the bucket
// counts of the three dedup signals over the same corpus — the daemon-served
// analogue of the gfauto bisection RQ.
type BisectSet struct {
	Job      string          `json:"job"`
	Campaign string          `json:"campaign"`
	Outcomes []BisectOutcome `json:"outcomes"`
	// TransformBuckets is the campaign's Figure 6 bucket count (the first
	// signal); BisectBuckets counts distinct (target, first-bad release)
	// pairs; IntersectionBuckets applies the type heuristic within each
	// bisection bucket, suppressing a report only when both signals agree.
	TransformBuckets    int `json:"transform_buckets"`
	BisectBuckets       int `json:"bisect_buckets"`
	IntersectionBuckets int `json:"intersection_buckets"`
}

// Report is a reduced bug report as stored in the blob store and served by
// GET /reports/{hash}. Its JSON embeds the minimized sequence under
// "transformations" next to "signature", so a saved report is directly
// consumable by spirv-dedup -dir.
type Report struct {
	Case      string `json:"case"`
	Campaign  string `json:"campaign"`
	Target    string `json:"target"`
	Signature string `json:"signature"`
	Reference string `json:"reference"`
	Seed      int64  `json:"seed"`
	// Kept are the surviving indices into the original sequence.
	Kept    []int `json:"kept"`
	Delta   int   `json:"delta"`
	Queries int   `json:"queries"`
	// Transformations is the minimized sequence (fuzz.MarshalSequence).
	Transformations json.RawMessage `json:"transformations"`
}

// Metrics is the daemon-wide counter snapshot (GET /metrics).
type Metrics struct {
	Campaigns     int `json:"campaigns"`
	CampaignsDone int `json:"campaigns_done"`
	// Bisection-job counters; Bisect holds the probe/compile stats of the
	// shared bisection engine.
	BisectJobs     int          `json:"bisect_jobs"`
	BisectJobsDone int          `json:"bisect_jobs_done"`
	Bisect         bisect.Stats `json:"bisect"`
	// Job-queue counters.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRetried   uint64 `json:"jobs_retried"`
	JobsDropped   uint64 `json:"jobs_dropped"`
	// JobsSkipped counts pipeline steps satisfied from the journal instead of
	// re-running — >0 after a resume proves checkpoint reuse.
	JobsSkipped uint64 `json:"jobs_skipped"`
	// ReductionsCovered sums CoveredReductions across campaigns: reductions
	// skipped by the cross-bucket pre-check.
	ReductionsCovered int `json:"reductions_covered"`
	// Subsystem counters.
	Runner runner.Stats `json:"runner"`
	Replay replay.Stats `json:"replay"`
	Store  store.Stats  `json:"store"`
	// Memo is the persistent execution memo store's snapshot; nil when the
	// daemon runs without -memo-dir.
	Memo *memostore.Stats `json:"memo,omitempty"`
}
