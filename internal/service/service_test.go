package service

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/store"
	"spirvfuzz/internal/target"
)

func TestSpecNormalize(t *testing.T) {
	sp := CampaignSpec{Tests: 10}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sp.Tool != "spirv-fuzz" || sp.CapPerSignature != 2 || len(sp.Targets) != len(target.All()) {
		t.Fatalf("defaults not resolved: %+v", sp)
	}
	simple := CampaignSpec{Tests: 5, Tool: "spirv-fuzz-simple"}
	if err := simple.Normalize(); err != nil {
		t.Fatal(err)
	}
	if simple.SeedBase != 1<<32 {
		t.Fatalf("simple seed base = %d", simple.SeedBase)
	}
	for _, bad := range []CampaignSpec{
		{Tests: 0},
		{Tests: 5, Tool: "glsl-fuzz"},
		{Tests: 5, Targets: []string{"NoSuchGPU"}},
		{Tests: 5, Targets: []string{"Mesa", "Mesa"}},
		{Tests: 5, ReduceSlowdownMS: -1},
	} {
		if err := bad.Normalize(); err == nil {
			t.Fatalf("spec %+v normalized without error", bad)
		}
	}
}

// waitCampaign polls until the campaign reaches a terminal state.
func waitCampaign(t *testing.T, s *Service, id string, timeout time.Duration) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Campaign(id)
		if !ok {
			t.Fatalf("campaign %s disappeared", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s after %v: %+v", id, st.State, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignPipeline runs one campaign end to end in process and checks
// the shape of everything the daemon would serve: status, buckets,
// per-target type disjointness, and spirv-dedup-compatible report blobs.
func TestCampaignPipeline(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	status, err := s.CreateCampaign(CampaignSpec{Tests: 25})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s, status.ID, 2*time.Minute)
	if status.State != StateDone {
		t.Fatalf("campaign failed: %+v", status)
	}
	if status.TestsDone != 25 || status.Bugs == 0 || status.Reduced == 0 || status.Buckets == 0 {
		t.Fatalf("empty campaign: %+v", status)
	}
	if status.Reduced != status.ReduceTotal {
		t.Fatalf("reduced %d of %d", status.Reduced, status.ReduceTotal)
	}

	sets, err := s.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0].Buckets) != status.Buckets {
		t.Fatalf("bucket sets %+v vs status %+v", sets, status)
	}
	// Figure 6 invariant: within one target, recommended reports share no
	// transformation type.
	perTarget := map[string]map[string]bool{}
	for _, b := range sets[0].Buckets {
		if len(b.Types) == 0 || b.ReportHash == "" || b.SequenceLen == 0 {
			t.Fatalf("malformed bucket %+v", b)
		}
		seen := perTarget[b.Target]
		if seen == nil {
			seen = map[string]bool{}
			perTarget[b.Target] = seen
		}
		for _, ty := range b.Types {
			if seen[ty] {
				t.Fatalf("target %s: type %s appears in two buckets", b.Target, ty)
			}
			seen[ty] = true
		}
		// The report blob must be consumable by spirv-dedup: a JSON object
		// with "signature" and a parseable "transformations" sequence.
		blob, err := s.ReportBlob(b.ReportHash)
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Signature       string          `json:"signature"`
			Transformations json.RawMessage `json:"transformations"`
		}
		if err := json.Unmarshal(blob, &report); err != nil {
			t.Fatal(err)
		}
		if report.Signature != b.Signature {
			t.Fatalf("report signature %q, bucket %q", report.Signature, b.Signature)
		}
		seq, err := fuzz.UnmarshalSequence(report.Transformations)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != b.SequenceLen {
			t.Fatalf("report sequence length %d, bucket %d", len(seq), b.SequenceLen)
		}
	}

	m := s.Metrics()
	if m.Campaigns != 1 || m.CampaignsDone != 1 || m.JobsCompleted == 0 || m.JobsFailed != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Runner.Hits == 0 || m.Store.JournalRecords == 0 {
		t.Fatalf("subsystem counters missing: %+v", m)
	}
}

// TestServiceResumeBitwiseIdentical is the determinism contract of the
// daemon (in-process variant of the spirvd kill/restart e2e test): a
// campaign interrupted mid-reduction by a forced drain and resumed by a new
// service over the same store produces a bucket set bitwise-identical to an
// uninterrupted run, with journal-satisfied steps counted as skipped.
func TestServiceResumeBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline test")
	}
	spec := CampaignSpec{Tests: 20, ReduceSlowdownMS: 10}

	// Uninterrupted baseline (slowdown kept identical: it never changes
	// results, only timing, but keeping the spec equal removes all doubt).
	baseStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(baseStore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseStatus, err := base.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseStatus = waitCampaign(t, base, baseStatus.ID, 2*time.Minute)
	if baseStatus.State != StateDone || baseStatus.Reduced == 0 {
		t.Fatalf("baseline campaign: %+v", baseStatus)
	}
	baseSets, err := base.Buckets(baseStatus.ID)
	if err != nil {
		t.Fatal(err)
	}
	base.Close(context.Background())

	// Interrupted run: force-drain the service mid-reduction...
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(st1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := s1.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, _ := s1.Campaign(status.ID)
		if cur.Reduced >= 1 || cur.State == StateDone {
			if cur.State == StateDone {
				t.Log("campaign finished before the interruption landed; resume still exercises full skip")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started reducing: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	s1.Close(expired) // forced drain: in-flight jobs are canceled, unjournaled

	// ...and resume it with a fresh service over the same store.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	resumed := waitCampaign(t, s2, status.ID, 2*time.Minute)
	if resumed.State != StateDone {
		t.Fatalf("resumed campaign: %+v", resumed)
	}
	if resumed.SkippedTests == 0 {
		t.Fatalf("resume re-ran every test: %+v", resumed)
	}
	if m := s2.Metrics(); m.JobsSkipped == 0 {
		t.Fatalf("metrics show no checkpoint reuse: %+v", m)
	}

	resumedSets, err := s2.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, _ := json.Marshal(baseSets)
	resumedJSON, _ := json.Marshal(resumedSets)
	if string(baseJSON) != string(resumedJSON) {
		t.Fatalf("buckets diverged after resume:\n%s\nvs uninterrupted\n%s", resumedJSON, baseJSON)
	}
	if !reflect.DeepEqual(resumed.Spec, baseStatus.Spec) {
		t.Fatalf("journaled spec drifted: %+v vs %+v", resumed.Spec, baseStatus.Spec)
	}
}

// TestServiceRecoversDoneCampaign: a service restarted after a campaign
// finished serves its buckets from the checkpoint without re-running
// anything.
func TestServiceRecoversDoneCampaign(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(st1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := s1.CreateCampaign(CampaignSpec{Tests: 8})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s1, status.ID, 2*time.Minute)
	if status.State != StateDone {
		t.Fatalf("campaign: %+v", status)
	}
	before, err := s1.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close(context.Background())

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	got, ok := s2.Campaign(status.ID)
	if !ok || got.State != StateDone || got.Buckets != status.Buckets {
		t.Fatalf("recovered campaign: %+v (want %+v)", got, status)
	}
	after, err := s2.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("buckets changed across restart:\n%+v\nvs\n%+v", after, before)
	}
	// Nothing re-ran: the new service submitted no jobs for the campaign.
	if m := s2.Metrics(); m.JobsSubmitted != 0 {
		t.Fatalf("restart re-submitted %d jobs", m.JobsSubmitted)
	}
	// New campaigns still work after recovery.
	st3, err := s2.CreateCampaign(CampaignSpec{Tests: 4, Targets: []string{"Mesa", "SwiftShader"}})
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == status.ID {
		t.Fatalf("ID counter not advanced past recovered campaigns: %s", st3.ID)
	}
	if fin := waitCampaign(t, s2, st3.ID, 2*time.Minute); fin.State != StateDone {
		t.Fatalf("post-recovery campaign: %+v", fin)
	}
}
