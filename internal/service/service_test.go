package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/store"
	"spirvfuzz/internal/target"
)

func TestSpecNormalize(t *testing.T) {
	sp := CampaignSpec{Tests: 10}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sp.Tool != "spirv-fuzz" || sp.CapPerSignature != 2 || len(sp.Targets) != len(target.All()) {
		t.Fatalf("defaults not resolved: %+v", sp)
	}
	simple := CampaignSpec{Tests: 5, Tool: "spirv-fuzz-simple"}
	if err := simple.Normalize(); err != nil {
		t.Fatal(err)
	}
	if simple.SeedBase != 1<<32 {
		t.Fatalf("simple seed base = %d", simple.SeedBase)
	}
	for _, bad := range []CampaignSpec{
		{Tests: 0},
		{Tests: 5, Tool: "glsl-fuzz"},
		{Tests: 5, Targets: []string{"NoSuchGPU"}},
		{Tests: 5, Targets: []string{"Mesa", "Mesa"}},
		{Tests: 5, ReduceSlowdownMS: -1},
	} {
		if err := bad.Normalize(); err == nil {
			t.Fatalf("spec %+v normalized without error", bad)
		}
	}
}

// waitCampaign polls until the campaign reaches a terminal state.
func waitCampaign(t *testing.T, s *Service, id string, timeout time.Duration) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Campaign(id)
		if !ok {
			t.Fatalf("campaign %s disappeared", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s after %v: %+v", id, st.State, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignPipeline runs one campaign end to end in process and checks
// the shape of everything the daemon would serve: status, buckets,
// per-target type disjointness, and spirv-dedup-compatible report blobs.
func TestCampaignPipeline(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	status, err := s.CreateCampaign(CampaignSpec{Tests: 25})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s, status.ID, 2*time.Minute)
	if status.State != StateDone {
		t.Fatalf("campaign failed: %+v", status)
	}
	if status.TestsDone != 25 || status.Bugs == 0 || status.Reduced == 0 || status.Buckets == 0 {
		t.Fatalf("empty campaign: %+v", status)
	}
	if status.Reduced != status.ReduceTotal {
		t.Fatalf("reduced %d of %d", status.Reduced, status.ReduceTotal)
	}

	sets, err := s.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0].Buckets) != status.Buckets {
		t.Fatalf("bucket sets %+v vs status %+v", sets, status)
	}
	// Figure 6 invariant: within one target, recommended reports share no
	// transformation type.
	perTarget := map[string]map[string]bool{}
	for _, b := range sets[0].Buckets {
		if len(b.Types) == 0 || b.ReportHash == "" || b.SequenceLen == 0 {
			t.Fatalf("malformed bucket %+v", b)
		}
		seen := perTarget[b.Target]
		if seen == nil {
			seen = map[string]bool{}
			perTarget[b.Target] = seen
		}
		for _, ty := range b.Types {
			if seen[ty] {
				t.Fatalf("target %s: type %s appears in two buckets", b.Target, ty)
			}
			seen[ty] = true
		}
		// The report blob must be consumable by spirv-dedup: a JSON object
		// with "signature" and a parseable "transformations" sequence.
		blob, err := s.ReportBlob(b.ReportHash)
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Signature       string          `json:"signature"`
			Transformations json.RawMessage `json:"transformations"`
		}
		if err := json.Unmarshal(blob, &report); err != nil {
			t.Fatal(err)
		}
		if report.Signature != b.Signature {
			t.Fatalf("report signature %q, bucket %q", report.Signature, b.Signature)
		}
		seq, err := fuzz.UnmarshalSequence(report.Transformations)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != b.SequenceLen {
			t.Fatalf("report sequence length %d, bucket %d", len(seq), b.SequenceLen)
		}
	}

	m := s.Metrics()
	if m.Campaigns != 1 || m.CampaignsDone != 1 || m.JobsCompleted == 0 || m.JobsFailed != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Runner.Hits == 0 || m.Store.JournalRecords == 0 {
		t.Fatalf("subsystem counters missing: %+v", m)
	}
}

// TestServiceResumeBitwiseIdentical is the determinism contract of the
// daemon (in-process variant of the spirvd kill/restart e2e test): a
// campaign interrupted mid-reduction by a forced drain and resumed by a new
// service over the same store produces a bucket set bitwise-identical to an
// uninterrupted run, with journal-satisfied steps counted as skipped.
func TestServiceResumeBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline test")
	}
	spec := CampaignSpec{Tests: 20, ReduceSlowdownMS: 10}

	// Uninterrupted baseline (slowdown kept identical: it never changes
	// results, only timing, but keeping the spec equal removes all doubt).
	baseStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(baseStore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseStatus, err := base.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseStatus = waitCampaign(t, base, baseStatus.ID, 2*time.Minute)
	if baseStatus.State != StateDone || baseStatus.Reduced == 0 {
		t.Fatalf("baseline campaign: %+v", baseStatus)
	}
	baseSets, err := base.Buckets(baseStatus.ID)
	if err != nil {
		t.Fatal(err)
	}
	base.Close(context.Background())

	// Interrupted run: force-drain the service mid-reduction...
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(st1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := s1.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, _ := s1.Campaign(status.ID)
		if cur.Reduced >= 1 || cur.State == StateDone {
			if cur.State == StateDone {
				t.Log("campaign finished before the interruption landed; resume still exercises full skip")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started reducing: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	s1.Close(expired) // forced drain: in-flight jobs are canceled, unjournaled

	// ...and resume it with a fresh service over the same store.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	resumed := waitCampaign(t, s2, status.ID, 2*time.Minute)
	if resumed.State != StateDone {
		t.Fatalf("resumed campaign: %+v", resumed)
	}
	if resumed.SkippedTests == 0 {
		t.Fatalf("resume re-ran every test: %+v", resumed)
	}
	if m := s2.Metrics(); m.JobsSkipped == 0 {
		t.Fatalf("metrics show no checkpoint reuse: %+v", m)
	}

	resumedSets, err := s2.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, _ := json.Marshal(baseSets)
	resumedJSON, _ := json.Marshal(resumedSets)
	if string(baseJSON) != string(resumedJSON) {
		t.Fatalf("buckets diverged after resume:\n%s\nvs uninterrupted\n%s", resumedJSON, baseJSON)
	}
	if !reflect.DeepEqual(resumed.Spec, baseStatus.Spec) {
		t.Fatalf("journaled spec drifted: %+v vs %+v", resumed.Spec, baseStatus.Spec)
	}
}

// TestServiceRecoversDoneCampaign: a service restarted after a campaign
// finished serves its buckets from the checkpoint without re-running
// anything.
func TestServiceRecoversDoneCampaign(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(st1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := s1.CreateCampaign(CampaignSpec{Tests: 8})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s1, status.ID, 2*time.Minute)
	if status.State != StateDone {
		t.Fatalf("campaign: %+v", status)
	}
	before, err := s1.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close(context.Background())

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	got, ok := s2.Campaign(status.ID)
	if !ok || got.State != StateDone || got.Buckets != status.Buckets {
		t.Fatalf("recovered campaign: %+v (want %+v)", got, status)
	}
	after, err := s2.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("buckets changed across restart:\n%+v\nvs\n%+v", after, before)
	}
	// Nothing re-ran: the new service submitted no jobs for the campaign.
	if m := s2.Metrics(); m.JobsSubmitted != 0 {
		t.Fatalf("restart re-submitted %d jobs", m.JobsSubmitted)
	}
	// New campaigns still work after recovery.
	st3, err := s2.CreateCampaign(CampaignSpec{Tests: 4, Targets: []string{"Mesa", "SwiftShader"}})
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == status.ID {
		t.Fatalf("ID counter not advanced past recovered campaigns: %s", st3.ID)
	}
	if fin := waitCampaign(t, s2, st3.ID, 2*time.Minute); fin.State != StateDone {
		t.Fatalf("post-recovery campaign: %+v", fin)
	}
}

// waitBisect polls until the bisection job reaches a terminal state.
func waitBisect(t *testing.T, s *Service, id string, timeout time.Duration) BisectStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.BisectJob(id)
		if !ok {
			t.Fatalf("bisect job %s disappeared", id)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("bisect job %s stuck in %s after %v: %+v", id, st.State, timeout, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBisectJobResumeTornJournal is the bisection counterpart of the campaign
// resume contract: a /bisect job SIGKILL'd mid-run — simulated by rewinding
// the journal to one completed verdict, deleting the result checkpoint, and
// leaving a torn half-written record at the tail — is auto-resumed by the
// next service over the same store and produces a result set
// bitwise-identical to the uninterrupted run, with the journaled verdict
// skipped rather than recomputed.
func TestBisectJobResumeTornJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline test")
	}
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(st1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := s1.CreateCampaign(CampaignSpec{Tests: 20})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s1, status.ID, 2*time.Minute)
	if status.State != StateDone || status.Reduced < 2 {
		t.Fatalf("campaign: %+v", status)
	}

	// A bisect job over an unfinished (or unknown) campaign is refused.
	if _, err := s1.CreateBisect(BisectSpec{Campaign: "c999"}); err == nil {
		t.Fatal("bisect of unknown campaign accepted")
	}

	job, err := s1.CreateBisect(BisectSpec{Campaign: status.ID})
	if err != nil {
		t.Fatal(err)
	}
	job = waitBisect(t, s1, job.ID, 2*time.Minute)
	if job.State != StateDone || job.CasesDone != status.Reduced {
		t.Fatalf("bisect job: %+v", job)
	}
	base, err := s1.BisectResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Outcomes) != status.Reduced || base.TransformBuckets != status.Buckets {
		t.Fatalf("result set %+v vs campaign %+v", base, status)
	}
	// No ordering between the three counts is guaranteed: intersection
	// refines the bisection partition but drops groups whose reductions kept
	// no transformations (the type heuristic cannot investigate those).
	if base.BisectBuckets == 0 || base.IntersectionBuckets == 0 {
		t.Fatalf("bucket counts: %+v", base)
	}
	for _, out := range base.Outcomes {
		if out.FirstBad == "" || out.Queries == 0 {
			t.Fatalf("empty verdict %+v", out)
		}
	}
	if m := s1.Metrics(); m.BisectJobs != 1 || m.BisectJobsDone != 1 || m.Bisect.Bisections == 0 {
		t.Fatalf("bisect metrics: %+v", m)
	}
	baseJSON, _ := json.Marshal(base)
	s1.Close(context.Background())

	// Simulate the SIGKILL: rewind the journal so only the first verdict
	// survives, drop bisect_done and the checkpoint (journal order guarantees
	// a crash losing the checkpoint also lost bisect_done or nothing), and
	// tear the tail mid-record as an interrupted append would.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	verdicts := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Campaign string `json:"campaign"`
			Type     string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Campaign == job.ID {
			switch rec.Type {
			case recCaseBisected:
				verdicts++
				if verdicts > 1 {
					continue
				}
			case recBisectDone:
				continue
			}
		}
		kept = append(kept, line)
	}
	if verdicts < 2 {
		t.Fatalf("journal has %d verdicts, cannot rewind", verdicts)
	}
	torn := `{"seq":999999,"campaign":"` + job.ID + `","type":"case_bisected","data":{"case":"te`
	kept = append(kept, torn)
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "checkpoints", "bisect-"+job.ID+".json")); err != nil {
		t.Fatal(err)
	}

	// The next service must recover the job as pending, resume it without
	// being asked, skip the surviving verdict, and converge on the same set.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	resumed := waitBisect(t, s2, job.ID, 2*time.Minute)
	if resumed.State != StateDone {
		t.Fatalf("resumed job: %+v", resumed)
	}
	if resumed.SkippedCases != 1 {
		t.Fatalf("skipped %d verdicts, want the 1 journaled one: %+v", resumed.SkippedCases, resumed)
	}
	if m := s2.Metrics(); m.JobsSkipped == 0 {
		t.Fatalf("metrics show no journal reuse: %+v", m)
	}
	got, err := s2.BisectResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(baseJSON) {
		t.Fatalf("bisect set diverged after torn-journal resume:\n%s\nvs uninterrupted\n%s", gotJSON, baseJSON)
	}
}

// TestCrossBucketPrecheck: with the pre-check enabled, a campaign whose
// selection holds several cases of one (target, signature) — guaranteed by
// the default cap of 2 — skips the later reductions as covered by the
// earlier minimized case, and the covered records surface in the status and
// metrics without disturbing the bucket invariants.
func TestCrossBucketPrecheck(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline test")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	status, err := s.CreateCampaign(CampaignSpec{Tests: 25, CrossBucketPrecheck: true})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s, status.ID, 2*time.Minute)
	if status.State != StateDone || status.Buckets == 0 {
		t.Fatalf("campaign: %+v", status)
	}
	if status.Reduced != status.ReduceTotal {
		t.Fatalf("reduced %d of %d", status.Reduced, status.ReduceTotal)
	}
	if status.CoveredReductions == 0 {
		t.Fatalf("pre-check skipped nothing: %+v", status)
	}
	if status.CoveredReductions >= status.Reduced {
		t.Fatalf("every reduction covered: %+v", status)
	}
	if m := s.Metrics(); m.ReductionsCovered != status.CoveredReductions {
		t.Fatalf("metrics %+v vs status %+v", m, status)
	}
	// Covered cases reuse their coverer's report, so the Figure 6 invariant
	// must still hold over the merged buckets.
	sets, err := s.Buckets(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	perTarget := map[string]map[string]bool{}
	for _, b := range sets[0].Buckets {
		seen := perTarget[b.Target]
		if seen == nil {
			seen = map[string]bool{}
			perTarget[b.Target] = seen
		}
		for _, ty := range b.Types {
			if seen[ty] {
				t.Fatalf("target %s: type %s appears in two buckets", b.Target, ty)
			}
			seen[ty] = true
		}
	}
}
