package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

// reduceCase is one bug selected for reduction. Case names embed the seed
// and target, so they are unique, stable across resumes, and sort the way
// the selection iterates.
type reduceCase struct {
	Name string
	Bug  BugRef
}

func caseName(campaignID string, bug BugRef) string {
	return fmt.Sprintf("%s/seed%d/%s", campaignID, bug.Seed, bug.Target)
}

// runCampaign drives one campaign through the three pipeline stages. Every
// stage consults the journal-derived state first and re-runs only what is
// missing; all recomputation is deterministic, so an interrupted-and-resumed
// campaign produces buckets bitwise-identical to an uninterrupted one.
func (s *Service) runCampaign(ctx context.Context, c *campaign) error {
	refs := corpus.References()
	donors := corpus.Donors()
	targets := make([]*target.Target, 0, len(c.spec.Targets))
	for _, name := range c.spec.Targets {
		tg := target.ByName(name)
		if tg == nil {
			return fmt.Errorf("service: campaign %s: unknown target %q", c.id, name)
		}
		targets = append(targets, tg)
	}

	// Stage 1: generate and classify. Each test is one job; journaled tests
	// are skipped (the skip counters are what GET /metrics reports as
	// checkpoint reuse).
	c.setState(StateFuzzing)
	var handles []*Handle
	for i := 0; i < c.spec.Tests; i++ {
		c.mu.Lock()
		_, done := c.testsDone[i]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedTests++
			c.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		i := i
		handles = append(handles, s.queue.Submit(Job{
			Label: fmt.Sprintf("%s/test%d", c.id, i),
			Fn: func(ctx context.Context) error {
				return s.fuzzTest(ctx, c, targets, refs, donors, i)
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Stage 2: reduce the selected bugs. Selection is deterministic (test
	// order, then the spec's target order, capped per (target, signature)),
	// so the interrupted and fresh runs pick identical cases.
	cases := c.selectReductions()
	c.mu.Lock()
	c.reduceTotal = len(cases)
	c.mu.Unlock()
	c.setState(StateReducing)
	handles = handles[:0]
	for _, rc := range cases {
		c.mu.Lock()
		_, done := c.reduced[rc.Name]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedReductions++
			c.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		rc := rc
		handles = append(handles, s.queue.Submit(Job{
			Label: "reduce/" + rc.Name,
			Fn: func(ctx context.Context) error {
				return s.reduceOne(ctx, c, refs, rc)
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Stage 3: deduplicate into buckets, checkpoint, and journal completion.
	// Cheap and fully derived, so it is not a queue job: a crash here simply
	// re-runs it on resume.
	c.setState(StateBucketing)
	buckets, err := c.buildBuckets(cases)
	if err != nil {
		return err
	}
	set := BucketSet{Campaign: c.id, Buckets: buckets}
	if err := s.st.SaveCheckpoint(bucketCheckpoint(c.id), set); err != nil {
		return err
	}
	if _, err := s.st.Journal().Append(c.id, recCampaignDone, campaignDoneRec{Buckets: len(buckets)}); err != nil {
		return err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return err
	}
	c.mu.Lock()
	c.buckets = buckets
	c.state = StateDone
	c.mu.Unlock()
	return nil
}

// waitAll waits for every handle and returns the first error in submission
// order (deterministic even when several jobs fail).
func waitAll(ctx context.Context, handles []*Handle) error {
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}

// fuzzTest is the stage-1 job: generate test i, classify it against every
// target, persist the artifacts of any bug, and journal the step.
func (s *Service) fuzzTest(ctx context.Context, c *campaign, targets []*target.Target, refs []corpus.Item, donors []*spirv.Module, i int) error {
	item := refs[i%len(refs)]
	seed := c.spec.SeedBase + int64(i)
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
		Seed:                  seed,
		Donors:                donors,
		EnableRecommendations: c.spec.Tool == string(harness.ToolSpirvFuzz),
		MinPasses:             5,
		MaxPasses:             14,
	})
	if err != nil {
		return err
	}
	var bugs []BugRef
	var seqHash, variantHash string
	sigs, err := harness.ClassifyAllCtx(ctx, s.eng, targets, item.Mod, res.Variant, item.Inputs, res.Inputs)
	if err != nil {
		return err
	}
	for ti, tg := range targets {
		sig := sigs[ti]
		if sig == "" {
			continue
		}
		if seqHash == "" {
			seqData, err := fuzz.MarshalSequence(res.Transformations)
			if err != nil {
				return err
			}
			if seqHash, err = s.st.PutBlob(seqData); err != nil {
				return err
			}
			if variantHash, err = s.st.PutBlob(res.Variant.EncodeBytes()); err != nil {
				return err
			}
		}
		bugs = append(bugs, BugRef{
			Target:      tg.Name,
			Signature:   sig,
			Reference:   item.Name,
			Seed:        seed,
			SeqHash:     seqHash,
			VariantHash: variantHash,
		})
	}
	if _, err := s.st.Journal().Append(c.id, recTestDone, testDoneRec{Index: i, Bugs: bugs}); err != nil {
		return err
	}
	c.mu.Lock()
	c.testsDone[i] = bugs
	c.mu.Unlock()
	return nil
}

// selectReductions picks which journaled bugs to reduce: tests in index
// order, each test's bugs in the spec's target order (the order fuzzTest
// recorded them), keeping at most CapPerSignature per (target, signature).
func (c *campaign) selectReductions() []reduceCase {
	c.mu.Lock()
	defer c.mu.Unlock()
	count := map[string]int{}
	var out []reduceCase
	for i := 0; i < c.spec.Tests; i++ {
		for _, bug := range c.testsDone[i] {
			key := bug.Target + "|" + bug.Signature
			if count[key] >= c.spec.CapPerSignature {
				continue
			}
			count[key]++
			out = append(out, reduceCase{Name: caseName(c.id, bug), Bug: bug})
		}
	}
	return out
}

// reduceOne is the stage-2 job: replay the journaled sequence, delta-debug it
// against the bug's interestingness test, persist the reduced report, and
// journal the step.
func (s *Service) reduceOne(ctx context.Context, c *campaign, refs []corpus.Item, rc reduceCase) error {
	tg := target.ByName(rc.Bug.Target)
	if tg == nil {
		return fmt.Errorf("service: unknown target %q", rc.Bug.Target)
	}
	var item *corpus.Item
	for i := range refs {
		if refs[i].Name == rc.Bug.Reference {
			item = &refs[i]
			break
		}
	}
	if item == nil {
		return fmt.Errorf("service: unknown reference %q", rc.Bug.Reference)
	}
	seqData, err := s.st.GetBlob(rc.Bug.SeqHash)
	if err != nil {
		return err
	}
	ts, err := fuzz.UnmarshalSequence(seqData)
	if err != nil {
		return err
	}
	interesting := reduce.ForOutcomeOn(s.eng, tg, item.Mod, item.Inputs, rc.Bug.Signature)
	if d := time.Duration(c.spec.ReduceSlowdownMS) * time.Millisecond; d > 0 {
		inner := interesting
		interesting = func(m *spirv.Module, in interp.Inputs) bool {
			// Pacing for interruption tests; results are unaffected.
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			return inner(m, in)
		}
	}
	res, err := reduce.ReduceParallelReplayCtx(ctx, item.Mod, item.Inputs, ts, interesting, s.eng.Workers(), s.reng)
	if err != nil {
		// The best-effort partial result is discarded: the journal has no
		// record, so a resumed daemon re-runs the reduction from scratch and
		// lands on the canonical 1-minimal sequence.
		return err
	}
	reducedSeq, err := fuzz.MarshalSequence(res.Sequence)
	if err != nil {
		return err
	}
	report := Report{
		Case:            rc.Name,
		Campaign:        c.id,
		Target:          rc.Bug.Target,
		Signature:       rc.Bug.Signature,
		Reference:       rc.Bug.Reference,
		Seed:            rc.Bug.Seed,
		Kept:            res.Kept,
		Delta:           res.Delta,
		Queries:         res.Queries,
		Transformations: json.RawMessage(reducedSeq),
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	reportHash, err := s.st.PutBlob(blob)
	if err != nil {
		return err
	}
	rec := reducedRec{
		Case:       rc.Name,
		Target:     rc.Bug.Target,
		Signature:  rc.Bug.Signature,
		ReportHash: reportHash,
		Types:      core.SortedTypes(core.TypeSet(res.Sequence, fuzz.SupportingTypes())),
		KeptLen:    len(res.Kept),
		Delta:      res.Delta,
		Queries:    res.Queries,
	}
	if _, err := s.st.Journal().Append(c.id, recReduced, rec); err != nil {
		return err
	}
	c.mu.Lock()
	c.reduced[rc.Name] = rec
	c.mu.Unlock()
	return nil
}

// buildBuckets applies the Figure 6 deduplication per target over the
// reduced cases, in the deterministic selection order.
func (c *campaign) buildBuckets(cases []reduceCase) ([]Bucket, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buckets := []Bucket{}
	for _, tgName := range c.spec.Targets {
		var tests []core.ReducedTest
		for _, rc := range cases {
			if rc.Bug.Target != tgName {
				continue
			}
			rec, ok := c.reduced[rc.Name]
			if !ok {
				return nil, fmt.Errorf("service: campaign %s: case %s selected but not reduced", c.id, rc.Name)
			}
			types := make(map[string]bool, len(rec.Types))
			for _, t := range rec.Types {
				types[t] = true
			}
			tests = append(tests, core.ReducedTest{Name: rc.Name, Types: types})
		}
		for _, picked := range core.Deduplicate(tests) {
			rec := c.reduced[picked.Name]
			buckets = append(buckets, Bucket{
				Target:      tgName,
				Case:        picked.Name,
				Signature:   rec.Signature,
				Types:       rec.Types,
				SequenceLen: rec.KeptLen,
				Delta:       rec.Delta,
				ReportHash:  rec.ReportHash,
			})
		}
	}
	return buckets, nil
}
