package service

import (
	"context"
	"fmt"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

// runCampaign drives one campaign through the three pipeline stages, each
// delegating to the shared step functions in steps.go. Every stage consults
// the journal-derived state first and re-runs only what is missing; all
// recomputation is deterministic, so an interrupted-and-resumed campaign
// produces buckets bitwise-identical to an uninterrupted one.
func (s *Service) runCampaign(ctx context.Context, c *campaign) error {
	refs := corpus.References()
	donors := corpus.Donors()
	targets, err := ResolveTargets(c.spec.Targets)
	if err != nil {
		return fmt.Errorf("service: campaign %s: %w", c.id, err)
	}
	env := Env{Eng: s.eng, Reng: s.reng, Blobs: s.st}

	// Snapshot the memo counters so the campaign can report its delta —
	// approximate when campaigns overlap, but a faithful warm/cold signal
	// for the common one-at-a-time case.
	memoStart := s.eng.Stats()
	defer func() {
		memoEnd := s.eng.Stats()
		c.mu.Lock()
		c.memoHits = memoEnd.MemoHits - memoStart.MemoHits
		c.memoMisses = memoEnd.MemoMisses - memoStart.MemoMisses
		c.mu.Unlock()
	}()

	// Stage 1: generate and classify. Each test is one job; journaled tests
	// are skipped (the skip counters are what GET /metrics reports as
	// checkpoint reuse).
	c.setState(StateFuzzing)
	var handles []*Handle
	for i := 0; i < c.spec.Tests; i++ {
		c.mu.Lock()
		_, done := c.testsDone[i]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedTests++
			c.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		i := i
		handles = append(handles, s.queue.Submit(Job{
			Label: fmt.Sprintf("%s/test%d", c.id, i),
			Fn: func(ctx context.Context) error {
				bugs, err := FuzzStep(ctx, env, c.spec, targets, refs, donors, i)
				if err != nil {
					return err
				}
				if _, err := s.st.Journal().Append(c.id, recTestDone, testDoneRec{Index: i, Bugs: bugs}); err != nil {
					return err
				}
				c.mu.Lock()
				c.testsDone[i] = bugs
				c.mu.Unlock()
				return nil
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Stage 2: reduce the selected bugs. Selection is deterministic (test
	// order, then the spec's target order, capped per (target, signature)),
	// so the interrupted and fresh runs pick identical cases.
	c.mu.Lock()
	cases := SelectReductions(c.id, c.spec, c.testsDone)
	c.reduceTotal = len(cases)
	c.mu.Unlock()
	c.setState(StateReducing)
	if c.spec.CrossBucketPrecheck {
		if err := s.reducePrechecked(ctx, c, env, refs, cases); err != nil {
			return err
		}
	} else {
		handles = handles[:0]
		for _, rc := range cases {
			c.mu.Lock()
			_, done := c.reduced[rc.Name]
			c.mu.Unlock()
			if done {
				c.mu.Lock()
				c.skippedReductions++
				c.mu.Unlock()
				s.skipped.Add(1)
				continue
			}
			rc := rc
			handles = append(handles, s.queue.Submit(Job{
				Label: "reduce/" + rc.Name,
				Fn: func(ctx context.Context) error {
					rec, err := ReduceStep(ctx, env, c.id, c.spec, refs, rc)
					if err != nil {
						return err
					}
					if _, err := s.st.Journal().Append(c.id, recReduced, rec); err != nil {
						return err
					}
					c.mu.Lock()
					c.reduced[rc.Name] = rec
					c.mu.Unlock()
					return nil
				},
			}))
		}
		if err := waitAll(ctx, handles); err != nil {
			return err
		}
	}

	// Stage 3: deduplicate into buckets, checkpoint, and journal completion.
	// Cheap and fully derived, so it is not a queue job: a crash here simply
	// re-runs it on resume.
	c.setState(StateBucketing)
	c.mu.Lock()
	buckets, err := BuildBuckets(c.id, c.spec, cases, c.reduced)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	set := BucketSet{Campaign: c.id, Buckets: buckets}
	if err := s.st.SaveCheckpoint(bucketCheckpoint(c.id), set); err != nil {
		return err
	}
	if _, err := s.st.Journal().Append(c.id, recCampaignDone, campaignDoneRec{Buckets: len(buckets)}); err != nil {
		return err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return err
	}
	c.mu.Lock()
	c.buckets = buckets
	c.state = StateDone
	c.mu.Unlock()
	return nil
}

// reducePrechecked is the reduce stage with the cross-bucket pre-check:
// cases run serially in selection order, and before a case is reduced, every
// earlier case's minimized variant is tried against this case's
// interestingness test — oldest first, first hit wins. A hit means the
// earlier report already exhibits this case's (target, signature), so the
// reduction is skipped and the case journaled as covered, reusing the
// coverer's report and type set (bucketing then merges the two). Each
// verdict depends on the minimized variants that exist before it, which is
// why this path is serial and not cluster-shardable; within the serial
// order every probe is deterministic, so an interrupted-and-resumed campaign
// journals identical records.
func (s *Service) reducePrechecked(ctx context.Context, c *campaign, env Env, refs []corpus.Item, cases []ReduceCase) error {
	// Minimized variants of completed, non-covered reductions, in selection
	// order. Covered cases are excluded: their variant is their coverer's,
	// which is already (earlier) in the list.
	type coverer struct {
		name string
		fc   *fuzz.Context
	}
	var coverers []coverer
	addCoverer := func(rec ReducedRec) error {
		if rec.CoveredBy != "" {
			return nil
		}
		fc, _, err := MinimizedVariant(env, refs, rec)
		if err != nil {
			return err
		}
		coverers = append(coverers, coverer{name: rec.Case, fc: fc})
		return nil
	}
	for _, rc := range cases {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		rec, done := c.reduced[rc.Name]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedReductions++
			c.mu.Unlock()
			s.skipped.Add(1)
			if err := addCoverer(rec); err != nil {
				return err
			}
			continue
		}
		tg := target.ByName(rc.Bug.Target)
		if tg == nil {
			return fmt.Errorf("service: unknown target %q", rc.Bug.Target)
		}
		item, err := findRef(refs, rc.Bug.Reference)
		if err != nil {
			return err
		}
		interesting := reduce.ForOutcomeOn(s.eng, tg, item.Mod, item.Inputs, rc.Bug.Signature)
		probes, covered := 0, ""
		for _, cov := range coverers {
			probes++
			if interesting(cov.fc.Mod, cov.fc.Inputs) {
				covered = cov.name
				break
			}
		}
		if covered != "" {
			c.mu.Lock()
			src := c.reduced[covered]
			c.mu.Unlock()
			rec = ReducedRec{
				Case:       rc.Name,
				Target:     rc.Bug.Target,
				Signature:  rc.Bug.Signature,
				ReportHash: src.ReportHash,
				Types:      src.Types,
				KeptLen:    src.KeptLen,
				Delta:      src.Delta,
				Queries:    probes,
				CoveredBy:  covered,
			}
		} else {
			rec, err = ReduceStep(ctx, env, c.id, c.spec, refs, rc)
			if err != nil {
				return err
			}
		}
		if _, err := s.st.Journal().Append(c.id, recReduced, rec); err != nil {
			return err
		}
		c.mu.Lock()
		c.reduced[rc.Name] = rec
		c.mu.Unlock()
		if err := addCoverer(rec); err != nil {
			return err
		}
	}
	return nil
}

// runBisect drives one bisection job: list the finished campaign's reduced
// cases in their canonical selection order, bisect each as one queue job
// (journaled verdicts are skipped), then assemble and checkpoint the result
// set. Every verdict is deterministic, so an interrupted-and-resumed job —
// or a cluster-sharded one — produces a set bitwise-identical to an
// uninterrupted single-node run.
func (s *Service) runBisect(ctx context.Context, j *bisectJob) error {
	s.mu.Lock()
	c := s.campaigns[j.campaign]
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("service: bisect job %s: no campaign %q", j.id, j.campaign)
	}
	// Snapshot the campaign's journal-derived state. The campaign was done
	// when the job was created, so every test and reduction record is present
	// even if the campaign itself is re-running its bucket stage after a
	// restart.
	c.mu.Lock()
	cases := SelectReductions(c.id, c.spec, c.testsDone)
	reduced := make(map[string]ReducedRec, len(c.reduced))
	for k, v := range c.reduced {
		reduced[k] = v
	}
	c.mu.Unlock()
	recs := make([]ReducedRec, len(cases))
	for i, rc := range cases {
		rec, ok := reduced[rc.Name]
		if !ok {
			return fmt.Errorf("service: bisect job %s: campaign %s case %s not reduced", j.id, j.campaign, rc.Name)
		}
		recs[i] = rec
	}
	j.mu.Lock()
	j.total = len(cases)
	j.mu.Unlock()
	j.setState(StateBisecting)

	refs := corpus.References()
	env := Env{Eng: s.eng, Reng: s.reng, Blobs: s.st}
	var handles []*Handle
	for _, rec := range recs {
		j.mu.Lock()
		_, done := j.outcomes[rec.Case]
		j.mu.Unlock()
		if done {
			j.mu.Lock()
			j.skipped++
			j.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		rec := rec
		handles = append(handles, s.queue.Submit(Job{
			Label: "bisect/" + rec.Case,
			Fn: func(ctx context.Context) error {
				out, err := BisectStep(ctx, env, s.beng, refs, rec)
				if err != nil {
					return err
				}
				if _, err := s.st.Journal().Append(j.id, recCaseBisected, out); err != nil {
					return err
				}
				j.mu.Lock()
				j.outcomes[out.Case] = out
				j.mu.Unlock()
				return nil
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Assemble the result. The transform-signal bucket count is rebuilt from
	// the same records rather than read off the campaign, so the job does not
	// depend on the campaign's in-memory state.
	buckets, err := BuildBuckets(c.id, c.spec, cases, reduced)
	if err != nil {
		return err
	}
	j.mu.Lock()
	outcomes := make(map[string]BisectOutcome, len(j.outcomes))
	for k, v := range j.outcomes {
		outcomes[k] = v
	}
	j.mu.Unlock()
	set, err := BuildBisectSet(j.id, j.campaign, cases, reduced, outcomes, len(buckets))
	if err != nil {
		return err
	}
	if err := s.st.SaveCheckpoint(bisectCheckpoint(j.id), set); err != nil {
		return err
	}
	if _, err := s.st.Journal().Append(j.id, recBisectDone, bisectDoneRec{BisectBuckets: set.BisectBuckets}); err != nil {
		return err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return err
	}
	j.mu.Lock()
	j.set = &set
	j.state = StateDone
	j.mu.Unlock()
	return nil
}

// waitAll waits for every handle and returns the first error in submission
// order (deterministic even when several jobs fail).
func waitAll(ctx context.Context, handles []*Handle) error {
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}
