package service

import (
	"context"
	"fmt"

	"spirvfuzz/internal/corpus"
)

// runCampaign drives one campaign through the three pipeline stages, each
// delegating to the shared step functions in steps.go. Every stage consults
// the journal-derived state first and re-runs only what is missing; all
// recomputation is deterministic, so an interrupted-and-resumed campaign
// produces buckets bitwise-identical to an uninterrupted one.
func (s *Service) runCampaign(ctx context.Context, c *campaign) error {
	refs := corpus.References()
	donors := corpus.Donors()
	targets, err := ResolveTargets(c.spec.Targets)
	if err != nil {
		return fmt.Errorf("service: campaign %s: %w", c.id, err)
	}
	env := Env{Eng: s.eng, Reng: s.reng, Blobs: s.st}

	// Stage 1: generate and classify. Each test is one job; journaled tests
	// are skipped (the skip counters are what GET /metrics reports as
	// checkpoint reuse).
	c.setState(StateFuzzing)
	var handles []*Handle
	for i := 0; i < c.spec.Tests; i++ {
		c.mu.Lock()
		_, done := c.testsDone[i]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedTests++
			c.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		i := i
		handles = append(handles, s.queue.Submit(Job{
			Label: fmt.Sprintf("%s/test%d", c.id, i),
			Fn: func(ctx context.Context) error {
				bugs, err := FuzzStep(ctx, env, c.spec, targets, refs, donors, i)
				if err != nil {
					return err
				}
				if _, err := s.st.Journal().Append(c.id, recTestDone, testDoneRec{Index: i, Bugs: bugs}); err != nil {
					return err
				}
				c.mu.Lock()
				c.testsDone[i] = bugs
				c.mu.Unlock()
				return nil
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Stage 2: reduce the selected bugs. Selection is deterministic (test
	// order, then the spec's target order, capped per (target, signature)),
	// so the interrupted and fresh runs pick identical cases.
	c.mu.Lock()
	cases := SelectReductions(c.id, c.spec, c.testsDone)
	c.reduceTotal = len(cases)
	c.mu.Unlock()
	c.setState(StateReducing)
	handles = handles[:0]
	for _, rc := range cases {
		c.mu.Lock()
		_, done := c.reduced[rc.Name]
		c.mu.Unlock()
		if done {
			c.mu.Lock()
			c.skippedReductions++
			c.mu.Unlock()
			s.skipped.Add(1)
			continue
		}
		rc := rc
		handles = append(handles, s.queue.Submit(Job{
			Label: "reduce/" + rc.Name,
			Fn: func(ctx context.Context) error {
				rec, err := ReduceStep(ctx, env, c.id, c.spec, refs, rc)
				if err != nil {
					return err
				}
				if _, err := s.st.Journal().Append(c.id, recReduced, rec); err != nil {
					return err
				}
				c.mu.Lock()
				c.reduced[rc.Name] = rec
				c.mu.Unlock()
				return nil
			},
		}))
	}
	if err := waitAll(ctx, handles); err != nil {
		return err
	}

	// Stage 3: deduplicate into buckets, checkpoint, and journal completion.
	// Cheap and fully derived, so it is not a queue job: a crash here simply
	// re-runs it on resume.
	c.setState(StateBucketing)
	c.mu.Lock()
	buckets, err := BuildBuckets(c.id, c.spec, cases, c.reduced)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	set := BucketSet{Campaign: c.id, Buckets: buckets}
	if err := s.st.SaveCheckpoint(bucketCheckpoint(c.id), set); err != nil {
		return err
	}
	if _, err := s.st.Journal().Append(c.id, recCampaignDone, campaignDoneRec{Buckets: len(buckets)}); err != nil {
		return err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return err
	}
	c.mu.Lock()
	c.buckets = buckets
	c.state = StateDone
	c.mu.Unlock()
	return nil
}

// waitAll waits for every handle and returns the first error in submission
// order (deterministic even when several jobs fail).
func waitAll(ctx context.Context, handles []*Handle) error {
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}
