package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

// The campaign pipeline is deliberately split into pure, state-free step
// functions: generate-and-classify one test (FuzzStep), pick which bugs to
// reduce (SelectReductions), reduce one case (ReduceStep), and deduplicate
// into buckets (BuildBuckets). The single-node Service and the cluster
// coordinator/workers (internal/cluster) call the *same* functions, which is
// what makes distributed merge soundness a property of the code rather than
// an argument: every step is deterministic in (spec, inputs), selection and
// bucketing run over journal-shaped data in a canonical order, so any
// sharding of the steps across nodes reassembles into bitwise-identical
// buckets.

// BlobStore is the artifact persistence a pipeline step needs: the
// content-addressed subset of *store.Store. Workers pass their local store;
// hashes are stable across stores by construction.
type BlobStore interface {
	PutBlob(data []byte) (string, error)
	GetBlob(hash string) ([]byte, error)
}

// Env bundles the execution machinery behind the pipeline steps.
type Env struct {
	Eng   *runner.Engine
	Reng  *replay.Engine
	Blobs BlobStore
}

// ReduceCase is one bug selected for reduction. Case names embed the seed
// and target, so they are unique, stable across resumes and re-shardings,
// and sort the way the selection iterates.
type ReduceCase struct {
	Name string `json:"name"`
	Bug  BugRef `json:"bug"`
}

// ReducedRec is the journal-shaped result of one completed reduction. Types
// is the residual transformation-type set after ignoring supporting types,
// so bucket construction needs no blob reads.
type ReducedRec struct {
	Case       string   `json:"case"`
	Target     string   `json:"target"`
	Signature  string   `json:"signature"`
	ReportHash string   `json:"report_hash"`
	Types      []string `json:"types"`
	KeptLen    int      `json:"kept_len"`
	Delta      int      `json:"delta"`
	Queries    int      `json:"queries"`
	// CoveredBy names the earlier case whose minimized variant already
	// exhibits this case's (target, signature); set only by the cross-bucket
	// pre-check. A covered record reuses its coverer's report, types, and
	// sizes, and Queries counts the pre-check probes spent instead of
	// reduction queries.
	CoveredBy string `json:"covered_by,omitempty"`
}

// CaseName derives the reduction-case name of a bug: campaign, seed, and
// target, so names are unique, stable across resumes and re-shardings, and
// sort the way selection iterates.
func CaseName(campaignID string, bug BugRef) string {
	return fmt.Sprintf("%s/seed%d/%s", campaignID, bug.Seed, bug.Target)
}

// findRef returns the reference-corpus item with the given name.
func findRef(refs []corpus.Item, name string) (*corpus.Item, error) {
	for i := range refs {
		if refs[i].Name == name {
			return &refs[i], nil
		}
	}
	return nil, fmt.Errorf("service: unknown reference %q", name)
}

// ResolveTargets maps spec target names to targets, in spec order.
func ResolveTargets(names []string) ([]*target.Target, error) {
	targets := make([]*target.Target, 0, len(names))
	for _, name := range names {
		tg := target.ByName(name)
		if tg == nil {
			return nil, fmt.Errorf("service: unknown target %q", name)
		}
		targets = append(targets, tg)
	}
	return targets, nil
}

// FuzzStep generates test i of a campaign (seed = SeedBase + i over reference
// i mod len(refs)), classifies the variant against every target, and persists
// the sequence and variant blobs of any bug. Fully deterministic in
// (spec, refs, donors, i); the returned BugRefs reference artifacts by
// content hash, so two nodes running the same step produce identical records.
func FuzzStep(ctx context.Context, env Env, spec CampaignSpec, targets []*target.Target, refs []corpus.Item, donors []*spirv.Module, i int) ([]BugRef, error) {
	if d := time.Duration(spec.FuzzSlowdownMS) * time.Millisecond; d > 0 {
		// Pacing for interruption and pipelining tests; results unaffected.
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	item := refs[i%len(refs)]
	seed := spec.SeedBase + int64(i)
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
		Seed:                  seed,
		Donors:                donors,
		EnableRecommendations: spec.Tool == string(harness.ToolSpirvFuzz),
		MinPasses:             5,
		MaxPasses:             14,
	})
	if err != nil {
		return nil, err
	}
	var bugs []BugRef
	var seqHash, variantHash string
	sigs, err := harness.ClassifyAllCtx(ctx, env.Eng, targets, item.Mod, res.Variant, item.Inputs, res.Inputs)
	if err != nil {
		return nil, err
	}
	for ti, tg := range targets {
		sig := sigs[ti]
		if sig == "" {
			continue
		}
		if seqHash == "" {
			seqData, err := fuzz.MarshalSequence(res.Transformations)
			if err != nil {
				return nil, err
			}
			if seqHash, err = env.Blobs.PutBlob(seqData); err != nil {
				return nil, err
			}
			if variantHash, err = env.Blobs.PutBlob(res.Variant.EncodeBytes()); err != nil {
				return nil, err
			}
		}
		bugs = append(bugs, BugRef{
			Target:      tg.Name,
			Signature:   sig,
			Reference:   item.Name,
			Seed:        seed,
			SeqHash:     seqHash,
			VariantHash: variantHash,
		})
	}
	return bugs, nil
}

// SelectReductions picks which recorded bugs to reduce: tests in index
// order, each test's bugs in the spec's target order (the order FuzzStep
// recorded them), keeping at most CapPerSignature per (target, signature).
// Deterministic in its arguments — in particular, independent of how the
// tests were sharded across nodes.
func SelectReductions(campaignID string, spec CampaignSpec, testsDone map[int][]BugRef) []ReduceCase {
	count := map[string]int{}
	var out []ReduceCase
	for i := 0; i < spec.Tests; i++ {
		for _, bug := range testsDone[i] {
			key := bug.Target + "|" + bug.Signature
			if count[key] >= spec.CapPerSignature {
				continue
			}
			count[key]++
			out = append(out, ReduceCase{Name: CaseName(campaignID, bug), Bug: bug})
		}
	}
	return out
}

// ReduceWaveWidth is the speculative-wave width every reduction runs at.
// The minimized keep-set is worker-count-independent, but the *query count*
// is not (discarded speculative queries still count, and the wave width
// decides how many there are). The report blob records Queries, so the wave
// width must be a property of the campaign, not of whichever node's engine
// pool happened to run the shard — otherwise a 2-worker node and a 4-worker
// node produce different report hashes for the same case and cluster merges
// stop being bitwise-identical to single-node runs.
const ReduceWaveWidth = 4

// ReduceStep replays the case's journaled sequence, delta-debugs it against
// the bug's interestingness test, and persists the reduced report blob.
// Reduction runs at the pinned ReduceWaveWidth, so the record — including
// the report hash — is the same on every node.
func ReduceStep(ctx context.Context, env Env, campaignID string, spec CampaignSpec, refs []corpus.Item, rc ReduceCase) (ReducedRec, error) {
	tg := target.ByName(rc.Bug.Target)
	if tg == nil {
		return ReducedRec{}, fmt.Errorf("service: unknown target %q", rc.Bug.Target)
	}
	item, err := findRef(refs, rc.Bug.Reference)
	if err != nil {
		return ReducedRec{}, err
	}
	seqData, err := env.Blobs.GetBlob(rc.Bug.SeqHash)
	if err != nil {
		return ReducedRec{}, err
	}
	ts, err := fuzz.UnmarshalSequence(seqData)
	if err != nil {
		return ReducedRec{}, err
	}
	interesting := reduce.ForOutcomeOn(env.Eng, tg, item.Mod, item.Inputs, rc.Bug.Signature)
	if d := time.Duration(spec.ReduceSlowdownMS) * time.Millisecond; d > 0 {
		inner := interesting
		interesting = func(m *spirv.Module, in interp.Inputs) bool {
			// Pacing for interruption tests; results are unaffected.
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			return inner(m, in)
		}
	}
	res, err := reduce.ReduceParallelReplayCtx(ctx, item.Mod, item.Inputs, ts, interesting, ReduceWaveWidth, env.Reng)
	if err != nil {
		// The best-effort partial result is discarded: with no record of the
		// step, a resumed daemon or re-dispatched shard re-runs the reduction
		// from scratch and lands on the canonical 1-minimal sequence.
		return ReducedRec{}, err
	}
	reducedSeq, err := fuzz.MarshalSequence(res.Sequence)
	if err != nil {
		return ReducedRec{}, err
	}
	report := Report{
		Case:            rc.Name,
		Campaign:        campaignID,
		Target:          rc.Bug.Target,
		Signature:       rc.Bug.Signature,
		Reference:       rc.Bug.Reference,
		Seed:            rc.Bug.Seed,
		Kept:            res.Kept,
		Delta:           res.Delta,
		Queries:         res.Queries,
		Transformations: json.RawMessage(reducedSeq),
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return ReducedRec{}, err
	}
	reportHash, err := env.Blobs.PutBlob(blob)
	if err != nil {
		return ReducedRec{}, err
	}
	return ReducedRec{
		Case:       rc.Name,
		Target:     rc.Bug.Target,
		Signature:  rc.Bug.Signature,
		ReportHash: reportHash,
		Types:      core.SortedTypes(core.TypeSet(res.Sequence, fuzz.SupportingTypes())),
		KeptLen:    len(res.Kept),
		Delta:      res.Delta,
		Queries:    res.Queries,
	}, nil
}

// MinimizedVariant rebuilds the minimized variant of a completed reduction:
// it loads the case's report blob and replays the minimized sequence in full
// onto its reference module. The replay engine's prefix snapshots make
// repeats near-free. Returns the replayed context and the reference item.
func MinimizedVariant(env Env, refs []corpus.Item, rec ReducedRec) (*fuzz.Context, *corpus.Item, error) {
	blob, err := env.Blobs.GetBlob(rec.ReportHash)
	if err != nil {
		return nil, nil, err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, nil, fmt.Errorf("service: report %s: %w", rec.ReportHash, err)
	}
	item, err := findRef(refs, rep.Reference)
	if err != nil {
		return nil, nil, err
	}
	ts, err := fuzz.UnmarshalSequence(rep.Transformations)
	if err != nil {
		return nil, nil, err
	}
	keep := make([]int, len(ts))
	for i := range keep {
		keep[i] = i
	}
	fc, _ := env.Reng.NewSession(item.Mod, item.Inputs, ts).Replay(keep)
	return fc, item, nil
}

// BisectStep bisects one reduced case: it rebuilds the minimized variant
// from the case's report blob and binary-searches the target's release
// history for the first release exhibiting the bug. Deterministic in
// (rec, refs) — the verdict does not depend on which node runs the step or
// how warm its caches are — so the journaled outcome of a re-dispatched
// shard is identical to the original's.
func BisectStep(ctx context.Context, env Env, beng *bisect.Engine, refs []corpus.Item, rec ReducedRec) (BisectOutcome, error) {
	if err := ctx.Err(); err != nil {
		return BisectOutcome{}, err
	}
	fc, item, err := MinimizedVariant(env, refs, rec)
	if err != nil {
		return BisectOutcome{}, err
	}
	res, err := beng.Bisect(bisect.Case{
		Target:         rec.Target,
		Signature:      rec.Signature,
		Original:       item.Mod,
		OriginalInputs: item.Inputs,
		Variant:        fc.Mod,
		Inputs:         fc.Inputs,
	})
	if err != nil {
		return BisectOutcome{}, fmt.Errorf("service: bisect %s: %w", rec.Case, err)
	}
	return BisectOutcome{
		Case:      rec.Case,
		Target:    rec.Target,
		Signature: rec.Signature,
		FirstBad:  res.FirstBad,
		Queries:   res.Queries,
		CacheHits: res.CacheHits,
	}, nil
}

// BuildBisectSet assembles a finished bisection job's result over
// journal-shaped data: outcomes in the campaign's canonical case order, and
// the three signals' bucket counts. Like BuildBuckets it is deterministic in
// its arguments and order-independent in how the outcomes were produced, so
// a cluster-sharded job merges to the same set a single node computes.
// transformBuckets is the campaign's own Figure 6 bucket count.
func BuildBisectSet(jobID string, campaignID string, cases []ReduceCase, reduced map[string]ReducedRec, outcomes map[string]BisectOutcome, transformBuckets int) (BisectSet, error) {
	set := BisectSet{Job: jobID, Campaign: campaignID, TransformBuckets: transformBuckets}
	groups := map[string][]core.ReducedTest{}
	var order []string
	for _, rc := range cases {
		out, ok := outcomes[rc.Name]
		if !ok {
			return BisectSet{}, fmt.Errorf("service: bisect job %s: case %s selected but not bisected", jobID, rc.Name)
		}
		set.Outcomes = append(set.Outcomes, out)
		rec, ok := reduced[rc.Name]
		if !ok {
			return BisectSet{}, fmt.Errorf("service: bisect job %s: case %s has no reduction record", jobID, rc.Name)
		}
		k := dedup.BisectKey(out.Target, out.FirstBad)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		types := make(map[string]bool, len(rec.Types))
		for _, t := range rec.Types {
			types[t] = true
		}
		groups[k] = append(groups[k], core.ReducedTest{Name: rc.Name, Types: types})
	}
	set.BisectBuckets = len(order)
	// The intersection signal: the type heuristic within each bisection
	// bucket, one report per (bisect bucket × type bucket) cell.
	for _, k := range order {
		set.IntersectionBuckets += len(core.Deduplicate(groups[k]))
	}
	return set, nil
}

// BuildBuckets applies the Figure 6 deduplication per target over the
// reduced cases, in the deterministic selection order. Dedup keys (signature
// + transformation-type set) are content-derived and order-independent, and
// cases arrive in selection order regardless of which node reduced them, so
// the merged bucket set of a sharded campaign is bitwise-identical to a
// single-node run's.
func BuildBuckets(campaignID string, spec CampaignSpec, cases []ReduceCase, reduced map[string]ReducedRec) ([]Bucket, error) {
	buckets := []Bucket{}
	for _, tgName := range spec.Targets {
		var tests []core.ReducedTest
		for _, rc := range cases {
			if rc.Bug.Target != tgName {
				continue
			}
			rec, ok := reduced[rc.Name]
			if !ok {
				return nil, fmt.Errorf("service: campaign %s: case %s selected but not reduced", campaignID, rc.Name)
			}
			types := make(map[string]bool, len(rec.Types))
			for _, t := range rec.Types {
				types[t] = true
			}
			tests = append(tests, core.ReducedTest{Name: rc.Name, Types: types})
		}
		for _, picked := range core.Deduplicate(tests) {
			rec := reduced[picked.Name]
			buckets = append(buckets, Bucket{
				Target:      tgName,
				Case:        picked.Name,
				Signature:   rec.Signature,
				Types:       rec.Types,
				SequenceLen: rec.KeptLen,
				Delta:       rec.Delta,
				ReportHash:  rec.ReportHash,
			})
		}
	}
	return buckets, nil
}
