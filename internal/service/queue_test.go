package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(context.Background(), 4)
	var ran atomic.Int64
	var handles []*Handle
	for i := 0; i < 50; i++ {
		handles = append(handles, q.Submit(Job{
			Label: fmt.Sprintf("job%d", i),
			Fn: func(ctx context.Context) error {
				ran.Add(1)
				return nil
			},
		}))
	}
	for _, h := range handles {
		if err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := ran.Load(); n != 50 {
		t.Fatalf("ran %d of 50 jobs", n)
	}
	st := q.Stats()
	if st.Submitted != 50 || st.Completed != 50 || st.Failed != 0 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRetriesTransientFailures(t *testing.T) {
	q := NewQueue(context.Background(), 1)
	defer q.Drain(context.Background())
	var calls atomic.Int64
	h := q.Submit(Job{
		Label:   "flaky",
		Backoff: time.Millisecond,
		Fn: func(ctx context.Context) error {
			if calls.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
	})
	if err := h.Wait(context.Background()); err != nil {
		t.Fatalf("flaky job did not recover: %v", err)
	}
	if h.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", h.Attempts())
	}
	if st := q.Stats(); st.Retries != 2 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueBoundedRetry(t *testing.T) {
	q := NewQueue(context.Background(), 1)
	defer q.Drain(context.Background())
	boom := errors.New("boom")
	var calls atomic.Int64
	h := q.Submit(Job{
		Label:   "doomed",
		Backoff: time.Millisecond,
		Fn: func(ctx context.Context) error {
			calls.Add(1)
			return boom
		},
	})
	if err := h.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n != defaultMaxAttempts {
		t.Fatalf("job ran %d times, want %d", n, defaultMaxAttempts)
	}
	if st := q.Stats(); st.Failed != 1 || st.Retries != uint64(defaultMaxAttempts-1) {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	q := NewQueue(ctx, 1)
	defer q.Drain(context.Background())
	var calls atomic.Int64
	h := q.Submit(Job{
		Label: "canceled",
		Fn: func(jctx context.Context) error {
			calls.Add(1)
			cancel()
			<-jctx.Done()
			return jctx.Err()
		},
	})
	if err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("canceled job retried: ran %d times", n)
	}
}

// TestQueueDrainDropsPending: with one worker wedged, queued jobs complete
// with ErrDrained instead of running, and submissions after the drain fail
// with ErrQueueClosed.
func TestQueueDrainDropsPending(t *testing.T) {
	q := NewQueue(context.Background(), 1)
	release := make(chan struct{})
	started := make(chan struct{})
	inflight := q.Submit(Job{Label: "inflight", Fn: func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}})
	<-started
	var ran atomic.Int64
	pending := q.Submit(Job{Label: "pending", Fn: func(ctx context.Context) error {
		ran.Add(1)
		return nil
	}})

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	if err := pending.Wait(context.Background()); !errors.Is(err, ErrDrained) {
		t.Fatalf("pending job err = %v, want ErrDrained", err)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := inflight.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight job err = %v, want nil (drain waits for it)", err)
	}
	if ran.Load() != 0 {
		t.Fatal("dropped job ran anyway")
	}
	late := q.Submit(Job{Label: "late", Fn: func(ctx context.Context) error { return nil }})
	if err := late.Wait(context.Background()); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-drain submit err = %v, want ErrQueueClosed", err)
	}
	if st := q.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (pending + late)", st.Dropped)
	}
}

// TestQueueDrainForced: a drain whose context expires cancels in-flight jobs
// rather than waiting forever, and reports the forced stop.
func TestQueueDrainForced(t *testing.T) {
	q := NewQueue(context.Background(), 1)
	started := make(chan struct{})
	h := q.Submit(Job{Label: "stuck", Fn: func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // only cancellation ends this job
		return ctx.Err()
	}})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	if err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("stuck job err = %v, want context.Canceled", err)
	}
}
