package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Queue errors.
var (
	// ErrQueueClosed is returned for jobs submitted after the queue stopped
	// accepting work.
	ErrQueueClosed = errors.New("service: queue closed")
	// ErrDrained is returned for jobs that were still pending when the queue
	// drained. Their pipeline steps were never journaled, so a restarted
	// daemon re-runs them.
	ErrDrained = errors.New("service: job dropped during drain")
)

const (
	defaultMaxAttempts = 3
	defaultBackoff     = 25 * time.Millisecond
)

// Job is one unit of pipeline work. Fn must be idempotent across attempts
// (pipeline jobs are: blob writes are content-addressed and journal appends
// happen once, after the work succeeds).
type Job struct {
	// Label identifies the job in errors and debugging.
	Label string
	// Fn does the work; it must honour ctx promptly.
	Fn func(ctx context.Context) error
	// MaxAttempts bounds retries (default 3). Context errors are never
	// retried — cancellation is a decision, not a transient fault.
	MaxAttempts int
	// Backoff is the initial retry delay (default 25ms), doubled per attempt.
	Backoff time.Duration
}

// Handle tracks one submitted job.
type Handle struct {
	job      Job
	done     chan struct{}
	err      error
	attempts int
}

// Wait blocks until the job finished (returning its final error) or ctx is
// done (returning ctx.Err(); the job keeps running).
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		return h.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the job's final error; only valid after Wait succeeded.
func (h *Handle) Err() error { return h.err }

// Attempts returns how many times the job ran; only valid after Wait.
func (h *Handle) Attempts() int { return h.attempts }

// QueueStats is a point-in-time snapshot of queue counters.
type QueueStats struct {
	Submitted uint64
	Completed uint64
	Failed    uint64
	Retries   uint64
	Dropped   uint64
	Workers   int
}

// Queue is a bounded-worker job queue with per-job retry and exponential
// backoff. Jobs run under the context passed to NewQueue; Drain stops intake,
// drops pending jobs (they are journal-resumable) and waits for in-flight
// jobs, escalating to cancellation if its context expires first.
type Queue struct {
	ctx     context.Context
	cancel  context.CancelFunc
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Handle
	closed  bool
	wg      sync.WaitGroup

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	retries   atomic.Uint64
	dropped   atomic.Uint64
}

// NewQueue starts a queue with the given number of workers (minimum 1).
// Canceling ctx cancels in-flight and future jobs but does not stop the
// workers; call Drain to shut down.
func NewQueue(ctx context.Context, workers int) *Queue {
	if workers < 1 {
		workers = 1
	}
	qctx, cancel := context.WithCancel(ctx)
	q := &Queue{ctx: qctx, cancel: cancel, workers: workers}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues a job. After Drain began, the returned handle is already
// done with ErrQueueClosed.
func (q *Queue) Submit(j Job) *Handle {
	h := &Handle{job: j, done: make(chan struct{})}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.dropped.Add(1)
		h.err = ErrQueueClosed
		close(h.done)
		return h
	}
	q.submitted.Add(1)
	q.pending = append(q.pending, h)
	q.cond.Signal()
	q.mu.Unlock()
	return h
}

// Drain shuts the queue down: intake stops, pending (unstarted) jobs complete
// immediately with ErrDrained, and Drain waits for in-flight jobs to finish.
// If ctx expires first the job context is canceled — jobs honour it promptly —
// and Drain still waits for the workers, returning ctx.Err() to report the
// forced stop. Drain is idempotent.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	pending := q.pending
	q.pending = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, h := range pending {
		q.dropped.Add(1)
		h.err = ErrDrained
		close(h.done)
	}

	workersDone := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(workersDone)
	}()
	var forced error
	select {
	case <-workersDone:
	case <-ctx.Done():
		forced = ctx.Err()
		q.cancel()
		<-workersDone
	}
	q.cancel() // release the context either way
	return forced
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		Submitted: q.submitted.Load(),
		Completed: q.completed.Load(),
		Failed:    q.failed.Load(),
		Retries:   q.retries.Load(),
		Dropped:   q.dropped.Load(),
		Workers:   q.workers,
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		h := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		q.run(h)
	}
}

// run executes one job with bounded retry. A job that fails with its own
// error is retried after an exponentially growing delay; context errors end
// the job immediately (the step is resumable, not broken).
func (q *Queue) run(h *Handle) {
	maxAttempts := h.job.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = defaultMaxAttempts
	}
	backoff := h.job.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	for attempt := 1; ; attempt++ {
		h.attempts = attempt
		if err := q.ctx.Err(); err != nil {
			h.err = err
			break
		}
		err := h.job.Fn(q.ctx)
		h.err = err
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		if attempt >= maxAttempts {
			break
		}
		q.retries.Add(1)
		select {
		case <-time.After(backoff):
		case <-q.ctx.Done():
		}
		backoff *= 2
	}
	if h.err != nil {
		q.failed.Add(1)
	} else {
		q.completed.Add(1)
	}
	close(h.done)
}
