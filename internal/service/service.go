package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/store"
)

// Journal record types. The journal is the single source of truth for what
// completed; everything else (status counters, buckets) is derived.
const (
	recCampaignCreated = "campaign_created" // data: CampaignSpec (normalized)
	recTestDone        = "test_done"        // data: testDoneRec
	recReduced         = "reduced"          // data: reducedRec
	recCampaignDone    = "campaign_done"    // data: campaignDoneRec
	recCampaignFailed  = "campaign_failed"  // data: campaignFailedRec
	// Bisection-job records; journaled under the job's own ID ("b001", ...)
	// in the record's campaign field.
	recBisectCreated = "bisect_created" // data: bisectCreatedRec
	recCaseBisected  = "case_bisected"  // data: BisectOutcome
	recBisectDone    = "bisect_done"    // data: bisectDoneRec
	recBisectFailed  = "bisect_failed"  // data: campaignFailedRec
)

// BugRef is one (test, target) bug finding as journaled in a testDoneRec.
// The sequence and variant are referenced by blob hash, so the record is
// small and the artifacts deduplicate across re-runs.
type BugRef struct {
	Target      string `json:"target"`
	Signature   string `json:"signature"`
	Reference   string `json:"reference"`
	Seed        int64  `json:"seed"`
	SeqHash     string `json:"seq_hash"`
	VariantHash string `json:"variant_hash"`
}

// testDoneRec journals one generated-and-classified test (possibly bug-free).
type testDoneRec struct {
	Index int      `json:"index"`
	Bugs  []BugRef `json:"bugs,omitempty"`
}

type campaignDoneRec struct {
	Buckets int `json:"buckets"`
}

type campaignFailedRec struct {
	Error string `json:"error"`
}

// bisectCreatedRec journals a new bisection job and the campaign it targets.
type bisectCreatedRec struct {
	Campaign string `json:"campaign"`
}

type bisectDoneRec struct {
	BisectBuckets int `json:"bisect_buckets"`
}

// bisectJob is the in-memory state of one bisection job, derived from the
// journal exactly like a campaign.
type bisectJob struct {
	id       string
	campaign string

	mu       sync.Mutex
	state    string
	total    int                      // cases to bisect; 0 until the job lists them
	outcomes map[string]BisectOutcome // case name -> journaled verdict
	set      *BisectSet               // non-nil once done
	skipped  int
	errMsg   string
}

func newBisectJob(id, campaign string) *bisectJob {
	return &bisectJob{
		id:       id,
		campaign: campaign,
		state:    StatePending,
		outcomes: make(map[string]BisectOutcome),
	}
}

func (j *bisectJob) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

func (j *bisectJob) status() BisectStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return BisectStatus{
		ID:           j.id,
		Campaign:     j.campaign,
		State:        j.state,
		CasesTotal:   j.total,
		CasesDone:    len(j.outcomes),
		SkippedCases: j.skipped,
		Error:        j.errMsg,
	}
}

// campaign is the in-memory state of one campaign, derived from the journal.
type campaign struct {
	id   string
	spec CampaignSpec

	mu        sync.Mutex
	state     string
	testsDone map[int][]BugRef      // index -> journaled bug refs
	reduced   map[string]ReducedRec // case name -> journaled reduction
	buckets   []Bucket
	errMsg    string
	// reduceTotal is set once the reduce stage selects its cases.
	reduceTotal       int
	skippedTests      int
	skippedReductions int
	// memoHits/memoMisses are the engine's memo-counter deltas over this
	// campaign's run window (observability only; see CampaignStatus).
	memoHits   uint64
	memoMisses uint64
}

func newCampaign(id string, spec CampaignSpec) *campaign {
	return &campaign{
		id:        id,
		spec:      spec,
		state:     StatePending,
		testsDone: make(map[int][]BugRef),
		reduced:   make(map[string]ReducedRec),
	}
}

func (c *campaign) setState(state string) {
	c.mu.Lock()
	c.state = state
	c.mu.Unlock()
}

func (c *campaign) status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID:                c.id,
		State:             c.state,
		Spec:              c.spec,
		TestsDone:         len(c.testsDone),
		ReduceTotal:       c.reduceTotal,
		Reduced:           len(c.reduced),
		Buckets:           len(c.buckets),
		SkippedTests:      c.skippedTests,
		SkippedReductions: c.skippedReductions,
		Error:             c.errMsg,
		MemoHits:          c.memoHits,
		MemoMisses:        c.memoMisses,
	}
	for _, bugs := range c.testsDone {
		st.Bugs += len(bugs)
	}
	// Derived from the records rather than counted, so the number survives a
	// restart without extra recovery bookkeeping.
	for _, rec := range c.reduced {
		if rec.CoveredBy != "" {
			st.CoveredReductions++
		}
	}
	return st
}

// Options configures a Service.
type Options struct {
	// Workers sizes the runner engine's pool and the job queue; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// ReplayBudget bounds the replay snapshot cache; <= 0 selects the
	// replay.DefaultBudget.
	ReplayBudget int64
	// MemoDir, when non-empty, attaches a persistent execution memo store
	// rooted there: campaign, bisect, and precheck executions consult it
	// before running and spill completed outcomes back, so a restarted
	// daemon — or a second campaign over the same corpus — warm-starts.
	// Results are bitwise-identical at any memo temperature.
	MemoDir string
	// MemoMaxBytes bounds the memo store's segment bytes; <= 0 selects
	// memostore.DefaultMaxBytes. Ignored without MemoDir.
	MemoMaxBytes int64
}

// Service owns the campaign pipeline: a job queue over the shared execution
// engine, with all durable state in the store. It is safe for concurrent use.
type Service struct {
	st    *store.Store
	eng   *runner.Engine
	reng  *replay.Engine
	beng  *bisect.Engine
	memo  *memostore.Store // nil without Options.MemoDir
	queue *Queue

	ctx    context.Context
	cancel context.CancelFunc

	mu           sync.Mutex
	campaigns    map[string]*campaign
	order        []string
	nextID       int
	bisects      map[string]*bisectJob
	bisectOrder  []string
	nextBisectID int

	pipelines sync.WaitGroup
	skipped   atomic.Uint64 // journal-satisfied steps (tests + reductions + bisections)
}

// New builds a service over an open store, replays the journal to recover
// campaign state, and resumes every unfinished campaign. The caller keeps
// ownership of the store until Close, which closes it.
func New(st *store.Store, opts Options) (*Service, error) {
	ctx, cancel := context.WithCancel(context.Background())
	workers := opts.Workers
	budget := opts.ReplayBudget
	if budget <= 0 {
		budget = replay.DefaultBudget
	}
	eng := runner.New(workers)
	// The memo store attaches before recovery: resumed pipelines start
	// executing immediately and must see the warm tier.
	var memo *memostore.Store
	if opts.MemoDir != "" {
		var err error
		memo, err = memostore.Open(opts.MemoDir, opts.MemoMaxBytes)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("service: memo store: %w", err)
		}
		eng.SetMemoStore(memo)
	}
	s := &Service{
		st:           st,
		eng:          eng,
		reng:         replay.NewEngine(budget),
		beng:         bisect.New(eng),
		memo:         memo,
		queue:        NewQueue(ctx, eng.Workers()),
		ctx:          ctx,
		cancel:       cancel,
		campaigns:    make(map[string]*campaign),
		nextID:       1,
		bisects:      make(map[string]*bisectJob),
		nextBisectID: 1,
	}
	if err := s.recover(); err != nil {
		cancel()
		s.queue.Drain(context.Background())
		if memo != nil {
			memo.Close()
		}
		return nil, err
	}
	// Resume unfinished campaigns in creation order: their journaled steps
	// are skipped, the remainder recomputed (deterministically, so buckets
	// end up identical to an uninterrupted run).
	for _, id := range s.order {
		c := s.campaigns[id]
		c.mu.Lock()
		resume := c.state == StatePending
		c.mu.Unlock()
		if resume {
			s.start(c)
		}
	}
	// Bisect jobs resume the same way; journaled case verdicts are skipped.
	for _, id := range s.bisectOrder {
		j := s.bisects[id]
		j.mu.Lock()
		resume := j.state == StatePending
		j.mu.Unlock()
		if resume {
			s.startBisect(j)
		}
	}
	return s, nil
}

// recover rebuilds campaign and bisect-job state from the journal.
func (s *Service) recover() error {
	err := s.st.Journal().Replay(func(r store.Record) error {
		switch r.Type {
		case recBisectCreated, recCaseBisected, recBisectDone, recBisectFailed:
			// Bisect records are journaled under the job's own ID.
			return s.recoverBisect(r)
		}
		c := s.campaigns[r.Campaign]
		if c == nil && r.Type != recCampaignCreated {
			return fmt.Errorf("service: journal references unknown campaign %q", r.Campaign)
		}
		switch r.Type {
		case recCampaignCreated:
			if c != nil {
				return fmt.Errorf("service: campaign %q created twice", r.Campaign)
			}
			var spec CampaignSpec
			if err := json.Unmarshal(r.Data, &spec); err != nil {
				return fmt.Errorf("service: campaign %q spec: %w", r.Campaign, err)
			}
			c = newCampaign(r.Campaign, spec)
			s.campaigns[r.Campaign] = c
			s.order = append(s.order, r.Campaign)
		case recTestDone:
			var rec testDoneRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				return err
			}
			c.testsDone[rec.Index] = rec.Bugs
		case recReduced:
			var rec ReducedRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				return err
			}
			c.reduced[rec.Case] = rec
		case recCampaignDone:
			// The bucket checkpoint is saved before campaign_done is
			// journaled; if it is nonetheless missing the campaign resumes
			// and rebuilds it from the reduced records.
			var set BucketSet
			ok, err := s.st.LoadCheckpoint(bucketCheckpoint(r.Campaign), &set)
			if err != nil || !ok {
				c.state = StatePending
				break
			}
			c.buckets = set.Buckets
			c.state = StateDone
		case recCampaignFailed:
			var rec campaignFailedRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				return err
			}
			c.state = StateFailed
			c.errMsg = rec.Error
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Seed the ID counters past every recovered campaign and bisect job.
	for _, id := range s.order {
		var n int
		if _, scanErr := fmt.Sscanf(id, "c%d", &n); scanErr == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	for _, id := range s.bisectOrder {
		var n int
		if _, scanErr := fmt.Sscanf(id, "b%d", &n); scanErr == nil && n >= s.nextBisectID {
			s.nextBisectID = n + 1
		}
	}
	return nil
}

// recoverBisect applies one bisect-job journal record during recovery.
func (s *Service) recoverBisect(r store.Record) error {
	j := s.bisects[r.Campaign]
	if j == nil && r.Type != recBisectCreated {
		return fmt.Errorf("service: journal references unknown bisect job %q", r.Campaign)
	}
	switch r.Type {
	case recBisectCreated:
		if j != nil {
			return fmt.Errorf("service: bisect job %q created twice", r.Campaign)
		}
		var rec bisectCreatedRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("service: bisect job %q spec: %w", r.Campaign, err)
		}
		j = newBisectJob(r.Campaign, rec.Campaign)
		s.bisects[r.Campaign] = j
		s.bisectOrder = append(s.bisectOrder, r.Campaign)
	case recCaseBisected:
		var out BisectOutcome
		if err := json.Unmarshal(r.Data, &out); err != nil {
			return err
		}
		j.outcomes[out.Case] = out
	case recBisectDone:
		// The result checkpoint is saved before bisect_done is journaled; if
		// it is nonetheless missing the job resumes and rebuilds it from the
		// journaled verdicts.
		var set BisectSet
		ok, err := s.st.LoadCheckpoint(bisectCheckpoint(r.Campaign), &set)
		if err != nil || !ok {
			j.state = StatePending
			break
		}
		j.set = &set
		j.total = len(set.Outcomes)
		j.state = StateDone
	case recBisectFailed:
		var rec campaignFailedRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return err
		}
		j.state = StateFailed
		j.errMsg = rec.Error
	}
	return nil
}

func bucketCheckpoint(campaignID string) string { return "buckets-" + campaignID }
func bisectCheckpoint(jobID string) string      { return "bisect-" + jobID }

// CreateCampaign validates and journals a new campaign and starts its
// pipeline. The returned status is the initial snapshot.
func (s *Service) CreateCampaign(spec CampaignSpec) (CampaignStatus, error) {
	if err := spec.Normalize(); err != nil {
		return CampaignStatus{}, err
	}
	s.mu.Lock()
	if err := s.ctx.Err(); err != nil {
		s.mu.Unlock()
		return CampaignStatus{}, fmt.Errorf("service: shutting down: %w", err)
	}
	id := fmt.Sprintf("c%03d", s.nextID)
	s.nextID++
	c := newCampaign(id, spec)
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	if _, err := s.st.Journal().Append(id, recCampaignCreated, spec); err != nil {
		return CampaignStatus{}, err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return CampaignStatus{}, err
	}
	s.start(c)
	return c.status(), nil
}

// start launches the pipeline goroutine for a campaign.
func (s *Service) start(c *campaign) {
	s.pipelines.Add(1)
	go func() {
		defer s.pipelines.Done()
		err := s.runCampaign(s.ctx, c)
		switch {
		case err == nil:
			// runCampaign journaled campaign_done and set the state.
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, ErrDrained), errors.Is(err, ErrQueueClosed):
			// Interrupted, not broken: leave the journal as-is so a restarted
			// daemon resumes from the completed steps.
		default:
			c.mu.Lock()
			c.state = StateFailed
			c.errMsg = err.Error()
			c.mu.Unlock()
			// Best-effort: a failure to journal the failure leaves the
			// campaign resumable, which is the safer outcome.
			s.st.Journal().Append(c.id, recCampaignFailed, campaignFailedRec{Error: err.Error()})
		}
	}()
}

// CreateBisect validates and journals a new bisection job over a finished
// campaign and starts it. The returned status is the initial snapshot.
func (s *Service) CreateBisect(spec BisectSpec) (BisectStatus, error) {
	if spec.Campaign == "" {
		return BisectStatus{}, fmt.Errorf("service: bisect needs a campaign")
	}
	s.mu.Lock()
	if err := s.ctx.Err(); err != nil {
		s.mu.Unlock()
		return BisectStatus{}, fmt.Errorf("service: shutting down: %w", err)
	}
	c := s.campaigns[spec.Campaign]
	s.mu.Unlock()
	if c == nil {
		return BisectStatus{}, fmt.Errorf("service: no campaign %q", spec.Campaign)
	}
	c.mu.Lock()
	state := c.state
	c.mu.Unlock()
	if state != StateDone {
		return BisectStatus{}, fmt.Errorf("service: campaign %s is %s; bisection needs a finished campaign", spec.Campaign, state)
	}
	s.mu.Lock()
	id := fmt.Sprintf("b%03d", s.nextBisectID)
	s.nextBisectID++
	j := newBisectJob(id, spec.Campaign)
	s.bisects[id] = j
	s.bisectOrder = append(s.bisectOrder, id)
	s.mu.Unlock()
	if _, err := s.st.Journal().Append(id, recBisectCreated, bisectCreatedRec{Campaign: spec.Campaign}); err != nil {
		return BisectStatus{}, err
	}
	if err := s.st.Journal().Sync(); err != nil {
		return BisectStatus{}, err
	}
	s.startBisect(j)
	return j.status(), nil
}

// startBisect launches the pipeline goroutine for a bisection job.
func (s *Service) startBisect(j *bisectJob) {
	s.pipelines.Add(1)
	go func() {
		defer s.pipelines.Done()
		err := s.runBisect(s.ctx, j)
		switch {
		case err == nil:
			// runBisect journaled bisect_done and set the state.
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, ErrDrained), errors.Is(err, ErrQueueClosed):
			// Interrupted, not broken: the journaled verdicts resume.
		default:
			j.mu.Lock()
			j.state = StateFailed
			j.errMsg = err.Error()
			j.mu.Unlock()
			s.st.Journal().Append(j.id, recBisectFailed, campaignFailedRec{Error: err.Error()})
		}
	}()
}

// BisectJob returns the status of one bisection job.
func (s *Service) BisectJob(id string) (BisectStatus, bool) {
	s.mu.Lock()
	j := s.bisects[id]
	s.mu.Unlock()
	if j == nil {
		return BisectStatus{}, false
	}
	return j.status(), true
}

// BisectJobs returns all bisection-job statuses in creation order.
func (s *Service) BisectJobs() []BisectStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.bisectOrder...)
	s.mu.Unlock()
	out := make([]BisectStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.BisectJob(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// BisectResult returns a finished bisection job's result set.
func (s *Service) BisectResult(id string) (BisectSet, error) {
	s.mu.Lock()
	j := s.bisects[id]
	s.mu.Unlock()
	if j == nil {
		return BisectSet{}, fmt.Errorf("service: no bisect job %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.set == nil {
		return BisectSet{}, fmt.Errorf("service: bisect job %s is %s, not done", id, j.state)
	}
	return *j.set, nil
}

// Campaign returns the status of one campaign.
func (s *Service) Campaign(id string) (CampaignStatus, bool) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return CampaignStatus{}, false
	}
	return c.status(), true
}

// Campaigns returns all campaign statuses in creation order.
func (s *Service) Campaigns() []CampaignStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Campaign(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Buckets returns the recommended reports of every finished campaign, in
// creation order. With a non-empty id it returns just that campaign's set
// (empty until the campaign is done).
func (s *Service) Buckets(id string) ([]BucketSet, error) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	if id != "" {
		s.mu.Lock()
		c := s.campaigns[id]
		s.mu.Unlock()
		if c == nil {
			return nil, fmt.Errorf("service: no campaign %q", id)
		}
		ids = []string{id}
	}
	var out []BucketSet
	for _, cid := range ids {
		s.mu.Lock()
		c := s.campaigns[cid]
		s.mu.Unlock()
		c.mu.Lock()
		set := BucketSet{Campaign: cid, Buckets: append([]Bucket(nil), c.buckets...)}
		c.mu.Unlock()
		if id != "" || len(set.Buckets) > 0 {
			out = append(out, set)
		}
	}
	return out, nil
}

// ReportBlob returns the raw reduced-report blob stored under hash.
func (s *Service) ReportBlob(hash string) ([]byte, error) {
	return s.st.GetBlob(hash)
}

// Metrics returns the daemon-wide counter snapshot.
func (s *Service) Metrics() Metrics {
	qs := s.queue.Stats()
	m := Metrics{
		JobsSubmitted: qs.Submitted,
		JobsCompleted: qs.Completed,
		JobsFailed:    qs.Failed,
		JobsRetried:   qs.Retries,
		JobsDropped:   qs.Dropped,
		JobsSkipped:   s.skipped.Load(),
		Runner:        s.eng.Stats(),
		Replay:        s.reng.Stats(),
		Store:         s.st.Stats(),
		Bisect:        s.beng.Stats(),
	}
	if s.memo != nil {
		ms := s.memo.Stats()
		m.Memo = &ms
	}
	for _, st := range s.Campaigns() {
		m.Campaigns++
		if st.State == StateDone {
			m.CampaignsDone++
		}
		m.ReductionsCovered += st.CoveredReductions
	}
	for _, st := range s.BisectJobs() {
		m.BisectJobs++
		if st.State == StateDone {
			m.BisectJobsDone++
		}
	}
	return m
}

// Close drains the service: job intake stops, pending jobs are dropped
// (their steps are journal-resumable), in-flight jobs finish — or are
// canceled when ctx expires — pipelines exit, and the store is synced and
// closed. Returns ctx.Err() if the drain was forced.
func (s *Service) Close(ctx context.Context) error {
	forced := s.queue.Drain(ctx)
	s.cancel()
	s.pipelines.Wait()
	if s.memo != nil {
		// After the pipelines stop: Close flushes the spill queue and
		// checkpoints the index so the next daemon warm-starts cheaply.
		if err := s.memo.Close(); err != nil && forced == nil {
			forced = err
		}
	}
	s.st.Journal().Sync()
	if err := s.st.Close(); err != nil && forced == nil {
		forced = err
	}
	return forced
}

// MemoStore returns the service's persistent memo store, or nil when the
// daemon runs without one.
func (s *Service) MemoStore() *memostore.Store { return s.memo }
