package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/store"
)

// memoRunResult captures everything the property compares: buckets,
// every reduction record, and the full bisect result set, serialized
// canonically.
type memoRunResult struct {
	buckets []byte
	reduced []byte
	bisect  []byte
	status  CampaignStatus
}

// memoRun executes one full campaign + bisect job in a fresh store (so
// nothing is journal-skipped; only the memo tier can warm it) and
// returns the canonical serialization of its outputs.
func memoRun(t *testing.T, workers int, memoDir string) memoRunResult {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{Workers: workers, MemoDir: memoDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	status, err := s.CreateCampaign(CampaignSpec{Tests: 12})
	if err != nil {
		t.Fatal(err)
	}
	status = waitCampaign(t, s, status.ID, 2*time.Minute)
	if status.State != StateDone {
		t.Fatalf("campaign failed: %+v", status)
	}
	sets, err := s.Buckets(status.ID)
	if err != nil || len(sets) != 1 {
		t.Fatalf("buckets: %v %v", sets, err)
	}
	bucketsJSON, err := json.Marshal(sets[0])
	if err != nil {
		t.Fatal(err)
	}
	// Reduction records, canonically ordered (maps marshal key-sorted).
	s.mu.Lock()
	c := s.campaigns[status.ID]
	s.mu.Unlock()
	c.mu.Lock()
	reducedJSON, err := json.Marshal(c.reduced)
	c.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	job, err := s.CreateBisect(BisectSpec{Campaign: status.ID})
	if err != nil {
		t.Fatal(err)
	}
	job = waitBisect(t, s, job.ID, 2*time.Minute)
	if job.State != StateDone {
		t.Fatalf("bisect failed: %+v", job)
	}
	set, err := s.BisectResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	bisectJSON, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	return memoRunResult{buckets: bucketsJSON, reduced: reducedJSON, bisect: bisectJSON, status: status}
}

// TestMemoTemperatureIdentity is the tentpole property: buckets,
// reductions, and bisect results are bitwise-identical at every memo
// temperature — no memo, cold, warm, torn-and-recovered, compacted — and
// at every worker count, including warm reads of a store written at a
// different worker count. (The nodes {1,3} leg of the property lives in
// internal/cluster's TestClusterMemoSync*, which reuses the same
// invariant across node counts.)
func TestMemoTemperatureIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign pipeline test")
	}
	ref := memoRun(t, 2, "") // no memo: the ground truth
	if ref.status.MemoHits != 0 || ref.status.MemoMisses != 0 {
		t.Fatalf("memo counters without a memo store: %+v", ref.status)
	}

	memoDir := filepath.Join(t.TempDir(), "memo")
	check := func(label string, got memoRunResult) {
		t.Helper()
		if !bytes.Equal(got.buckets, ref.buckets) {
			t.Fatalf("%s: buckets diverged\n got %s\nwant %s", label, got.buckets, ref.buckets)
		}
		if !bytes.Equal(got.reduced, ref.reduced) {
			t.Fatalf("%s: reductions diverged", label)
		}
		if !bytes.Equal(got.bisect, ref.bisect) {
			t.Fatalf("%s: bisect results diverged", label)
		}
	}

	cold := memoRun(t, 1, memoDir)
	check("cold/w1", cold)
	if cold.status.MemoMisses == 0 {
		t.Fatalf("cold campaign never consulted the memo: %+v", cold.status)
	}

	// Warm, at a different worker count than the writer.
	warm := memoRun(t, 4, memoDir)
	check("warm/w4", warm)
	if warm.status.MemoHits == 0 {
		t.Fatalf("warm campaign never hit the memo: %+v", warm.status)
	}

	// Torn temperature: chop the largest segment mid-record (the
	// checkpoint now overpromises, exercising mismatch recovery too).
	segs, err := filepath.Glob(filepath.Join(memoDir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no memo segments: %v", err)
	}
	sort.Slice(segs, func(i, j int) bool {
		fi, _ := os.Stat(segs[i])
		fj, _ := os.Stat(segs[j])
		return fi.Size() > fj.Size()
	})
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	check("truncated/w1", memoRun(t, 1, memoDir))

	// Compacted temperature: rewrite every segment, then read warm.
	ms, err := memostore.Open(memoDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := ms.Stats(); st.Compactions == 0 {
		t.Fatalf("compact did nothing: %+v", st)
	}
	ms.Close()
	compacted := memoRun(t, 4, memoDir)
	check("compacted/w4", compacted)
	if compacted.status.MemoHits == 0 {
		t.Fatalf("compacted store served no hits: %+v", compacted.status)
	}
}

// A daemon with a memo store reports it in /metrics; one without omits it.
func TestMetricsMemoBlock(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{MemoDir: filepath.Join(t.TempDir(), "memo")})
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoStore() == nil {
		t.Fatal("memo store not attached")
	}
	if m := s.Metrics(); m.Memo == nil {
		t.Fatal("metrics omit the memo block")
	}
	s.Close(context.Background())

	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	if s2.MemoStore() != nil || s2.Metrics().Memo != nil {
		t.Fatal("memo-less daemon reports a memo block")
	}
}
