package cli_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/testmod"
)

func TestLoadModuleCorpusPrefix(t *testing.T) {
	m, err := cli.LoadModule("corpus:diamond2")
	if err != nil {
		t.Fatal(err)
	}
	if m.EntryPointFunction() == nil {
		t.Fatal("corpus module has no entry point")
	}
	if _, err := cli.LoadModule("corpus:nope"); err == nil || !strings.Contains(err.Error(), "no corpus reference") {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadModuleFromFiles(t *testing.T) {
	dir := t.TempDir()
	m := testmod.Loop()
	binPath := filepath.Join(dir, "m.spv")
	txtPath := filepath.Join(dir, "m.spvasm")
	if err := asm.SaveModule(m, binPath); err != nil {
		t.Fatal(err)
	}
	if err := asm.SaveModule(m, txtPath); err != nil {
		t.Fatal(err)
	}
	viaBin, err := cli.LoadModule(binPath)
	if err != nil {
		t.Fatal(err)
	}
	viaTxt, err := cli.LoadModule(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if viaBin.String() != viaTxt.String() {
		t.Fatal("binary and text loads disagree")
	}
	if _, err := cli.LoadModule(filepath.Join(dir, "missing.spv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadInputs(t *testing.T) {
	// Corpus default: standard uniforms.
	in, err := cli.LoadInputs("", "corpus:gradient1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Uniforms["u_one"].F != 1 {
		t.Fatalf("u_one = %v", in.Uniforms["u_one"])
	}
	// Explicit file wins.
	dir := t.TempDir()
	path := filepath.Join(dir, "in.json")
	if err := os.WriteFile(path, []byte(`{"width":2,"height":3,"uniforms":{"x":{"kind":"float","value":0.25}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in2, err := cli.LoadInputs(path, "corpus:gradient1")
	if err != nil {
		t.Fatal(err)
	}
	if in2.W != 2 || in2.H != 3 || in2.Uniforms["x"].F != 0.25 {
		t.Fatalf("in2 = %+v", in2)
	}
	// Plain file path without inputs: empty inputs.
	in3, err := cli.LoadInputs("", "whatever.spv")
	if err != nil || in3.Uniforms != nil {
		t.Fatalf("in3 = %+v, %v", in3, err)
	}
}

func TestInputsJSONRoundTrip(t *testing.T) {
	item, err := cli.CorpusItem("matrix1")
	if err != nil {
		t.Fatal(err)
	}
	in := item.Inputs
	in.Uniforms["extra_bool"] = interp.BoolVal(true)
	in.Uniforms["extra_vec"] = interp.Vec2(0.5, -1)
	data, err := interp.EncodeInputs(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := interp.ParseInputs(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != in.W || back.H != in.H || len(back.Uniforms) != len(in.Uniforms) {
		t.Fatalf("shape mismatch: %+v vs %+v", back, in)
	}
	for name, v := range in.Uniforms {
		if !back.Uniforms[name].Equal(v) {
			t.Fatalf("uniform %s: %v vs %v", name, back.Uniforms[name], v)
		}
	}
	// Malformed inputs are rejected.
	if _, err := interp.ParseInputs([]byte(`{"uniforms":{"x":{"kind":"martian"}}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := interp.ParseInputs([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
