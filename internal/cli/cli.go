// Package cli holds small helpers shared by the command-line tools: module
// and input loading with support for the built-in corpus ("corpus:NAME"
// paths reference the reproduction's GraphicsFuzz-analogue shaders).
package cli

import (
	"fmt"
	"os"
	"strings"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/asm"
)

// LoadModule loads a module from a file (binary or textual) or, with a
// "corpus:" prefix, from the built-in reference corpus.
func LoadModule(path string) (*spirv.Module, error) {
	if name, ok := strings.CutPrefix(path, "corpus:"); ok {
		item, err := CorpusItem(name)
		if err != nil {
			return nil, err
		}
		return item.Mod, nil
	}
	return asm.LoadModule(path)
}

// CorpusItem resolves a reference shader by name.
func CorpusItem(name string) (corpus.Item, error) {
	for _, item := range corpus.References() {
		if item.Name == name {
			return item, nil
		}
	}
	var names []string
	for _, item := range corpus.References() {
		names = append(names, item.Name)
	}
	return corpus.Item{}, fmt.Errorf("cli: no corpus reference %q (have: %s)", name, strings.Join(names, ", "))
}

// LoadInputs loads a JSON inputs file; an empty path yields the standard
// corpus inputs when the module came from the corpus, or empty inputs.
func LoadInputs(path, modulePath string) (interp.Inputs, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return interp.Inputs{}, err
		}
		return interp.ParseInputs(data)
	}
	if name, ok := strings.CutPrefix(modulePath, "corpus:"); ok {
		item, err := CorpusItem(name)
		if err != nil {
			return interp.Inputs{}, err
		}
		return item.Inputs, nil
	}
	return interp.Inputs{}, nil
}
