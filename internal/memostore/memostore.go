// Package memostore is a disk-backed, content-addressed execution memo
// table: a persistent fifth cache tier under internal/runner's in-memory
// layers. Records are (key, kind, payload) triples appended to segment
// files as JSON lines; an in-memory index maps keys to their newest disk
// location; an atomically-written checkpoint of the index makes reopening
// cheap. The store borrows internal/store's durability idioms — torn tails
// are truncated on open, checkpoints are temp+fsync+rename — but relaxes
// them where cache semantics allow: every payload is the deterministic
// outcome of a content-addressed execution, so losing a record, dropping a
// whole segment for the size budget, or serving a stale duplicate is always
// safe. The only invariant is that a record served under a key is the exact
// bytes once spilled under that key.
//
// Concurrency: all operations are safe for concurrent use. Get/Put/spill
// serialize on one mutex (memo lookups happen only on in-memory cache
// misses, so the lock is cold); the singleflight table (Do) uses its own
// lock so a flight's fn can touch the store freely.
package memostore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key is a content-addressed memo key — in practice a SHA-256 over a
// domain-separation prefix plus the execution's identifying content.
type Key [32]byte

// String returns the key's lowercase hex form (the wire encoding).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, err
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("memostore: key length %d, want %d", len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Record is one memo entry as transferred over cluster sync.
type Record struct {
	Key  Key
	Kind uint8
	Data []byte
}

// Stats is a point-in-time snapshot of store counters. Recovery counters
// describe the most recent Open; sync counters are maintained by the
// cluster layer via AddPulled/AddPushed.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Spills        uint64 `json:"spills"`         // records appended (sync + async)
	SpillsDropped uint64 `json:"spills_dropped"` // async spills dropped on a full queue
	Records       int    `json:"records"`        // live index entries
	Segments      int    `json:"segments"`
	Bytes         int64  `json:"bytes"`
	Evictions     uint64 `json:"evictions"`   // segments dropped for the size budget
	Compactions   uint64 `json:"compactions"` // segments rewritten (live records kept)
	Checkpoints   uint64 `json:"checkpoints"`
	// Recovery counters from the most recent Open.
	RecoveredRecords   uint64 `json:"recovered_records,omitempty"`   // index entries rebuilt by scanning
	TruncatedTails     uint64 `json:"truncated_tails,omitempty"`     // torn segment tails truncated
	MismatchedSegments uint64 `json:"mismatched_segments,omitempty"` // checkpoint/segment size mismatches
	// Cluster sync counters.
	Pulled uint64 `json:"pulled,omitempty"` // records received from a peer
	Pushed uint64 `json:"pushed,omitempty"` // records sent to a peer
}

// HitRate returns Hits/(Hits+Misses); 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const (
	segPrefix = "seg-"
	segSuffix = ".log"
	indexName = "index.json"
	// checkpointEvery bounds how many appends go unindexed on disk; a crash
	// loses at most this many records to the (cheap) tail scan on reopen.
	checkpointEvery = 1024
	// spillQueueCap bounds the async spill queue; overflow drops records
	// (they will be re-executed and re-spilled later) rather than blocking
	// the execution path. Sized so a campaign burst outrunning a briefly
	// stalled disk (dirty-page writeback) parks in memory instead of
	// dropping: payloads are a few KiB, so the worst case is ~tens of MiB.
	spillQueueCap = 4096
	// DefaultMaxBytes is the segment budget when Open is given maxBytes <= 0.
	DefaultMaxBytes = 256 << 20
)

// loc is one index slot: where a key's record lives on disk.
type loc struct {
	seg  int
	off  int64
	n    int // line length including the trailing newline
	kind uint8
	seq  uint64 // monotone append order, for KeysSince
}

// segment is one on-disk append-only file of records.
type segment struct {
	id      int
	f       *os.File
	size    int64
	records int // lines ever appended (live + dead)
	live    int // index entries pointing here
}

// line is the on-disk and on-wire JSON shape of one record.
type line struct {
	K string `json:"k"`
	T uint8  `json:"t"`
	D []byte `json:"d,omitempty"`
}

// decodeLine parses one segment line (with or without its trailing
// newline). Lines the store writes itself have a fixed field order and no
// escapable bytes, so a handwritten scan serves the hot read path — a
// warm campaign decodes one line per served execution, and recovery scans
// every line past the checkpoint. Anything surprising falls back to
// encoding/json, so the fast path can only accelerate, never reject, a
// record the generic decoder would accept.
func decodeLine(buf []byte) (line, error) {
	buf = bytes.TrimSuffix(buf, []byte("\n"))
	if rec, ok := fastLine(buf); ok {
		return rec, nil
	}
	var rec line
	err := json.Unmarshal(buf, &rec)
	return rec, err
}

// fastLine decodes exactly the shape putLocked marshals:
// {"k":"<64 hex>","t":<digits>} optionally followed by ,"d":"<base64>".
func fastLine(buf []byte) (line, bool) {
	var rec line
	rest, ok := bytes.CutPrefix(buf, []byte(`{"k":"`))
	if !ok || len(rest) < 64 {
		return rec, false
	}
	rec.K = string(rest[:64])
	rest, ok = bytes.CutPrefix(rest[64:], []byte(`","t":`))
	if !ok {
		return rec, false
	}
	t, i := 0, 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		t = t*10 + int(rest[i]-'0')
		if t > 255 {
			return rec, false
		}
		i++
	}
	if i == 0 {
		return rec, false
	}
	rec.T = uint8(t)
	rest = rest[i:]
	if bytes.Equal(rest, []byte("}")) {
		return rec, true
	}
	rest, ok = bytes.CutPrefix(rest, []byte(`,"d":"`))
	if !ok {
		return rec, false
	}
	b64, ok := bytes.CutSuffix(rest, []byte(`"}`))
	if !ok || bytes.IndexByte(b64, '\\') >= 0 {
		return rec, false
	}
	data := make([]byte, base64.StdEncoding.DecodedLen(len(b64)))
	n, err := base64.StdEncoding.Decode(data, b64)
	if err != nil {
		return rec, false
	}
	rec.D = data[:n]
	return rec, true
}

// checkpoint is the persistent index shape.
type checkpoint struct {
	NextSeg  int           `json:"next_seg"`
	Segments []ckptSegment `json:"segments"`
	Entries  []ckptEntry   `json:"entries"`
}

type ckptSegment struct {
	ID   int   `json:"id"`
	Size int64 `json:"size"`
}

type ckptEntry struct {
	K    string `json:"k"`
	Seg  int    `json:"seg"`
	Off  int64  `json:"off"`
	N    int    `json:"n"`
	Kind uint8  `json:"t"`
}

// Store is a disk-backed memo table; use Open.
type Store struct {
	dir       string
	maxBytes  int64
	segTarget int64

	mu      sync.Mutex
	index   map[Key]loc
	segs    map[int]*segment
	order   []int // segment ids, oldest first; last is the append target
	nextSeg int
	nextSeq uint64
	unckpt  int // appends since the last checkpoint
	stats   Stats
	closed  bool

	spillCh   chan spillMsg
	spillWG   sync.WaitGroup
	closeOnce sync.Once

	fmu     sync.Mutex
	flights map[Key]*flightCall
}

type spillMsg struct {
	rec   Record
	flush chan struct{} // non-nil: a flush barrier, not a record
}

// Open opens (creating if needed) the memo store rooted at dir. maxBytes
// bounds total segment bytes (<= 0 selects DefaultMaxBytes). Recovery
// trusts the checkpointed index for segment prefixes the checkpoint
// covers, scans everything past them, truncates torn tails, rescans any
// segment shorter than its checkpointed size from the start, and drops
// index entries whose segment file is missing — every path degrades to a
// smaller cache, never to wrong data.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[Key]loc),
		segs:     make(map[int]*segment),
		flights:  make(map[Key]*flightCall),
		spillCh:  make(chan spillMsg, spillQueueCap),
	}
	st.segTarget = maxBytes / 8
	if st.segTarget < 256<<10 {
		st.segTarget = 256 << 10
	}
	if err := st.recover(); err != nil {
		return nil, err
	}
	st.spillWG.Add(1)
	go st.spillLoop()
	return st, nil
}

// recover rebuilds the in-memory index from the checkpoint plus segment
// scans. Called once from Open, before any concurrency.
func (s *Store) recover() error {
	var ckpt checkpoint
	if data, err := os.ReadFile(filepath.Join(s.dir, indexName)); err == nil {
		if json.Unmarshal(data, &ckpt) != nil {
			ckpt = checkpoint{} // corrupt checkpoint: rebuild by scanning
		}
	}
	ckptSize := make(map[int]int64, len(ckpt.Segments))
	for _, cs := range ckpt.Segments {
		ckptSize[cs.ID] = cs.Size
	}

	names, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var ids []int
	for _, de := range names {
		n := de.Name()
		if !de.Type().IsRegular() || !startsWith(n, segPrefix) || !endsWith(n, segSuffix) {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(n, segPrefix+"%08d"+segSuffix, &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Partition the checkpoint's entries by segment for trusted replay.
	bySeg := make(map[int][]ckptEntry)
	for _, e := range ckpt.Entries {
		bySeg[e.Seg] = append(bySeg[e.Seg], e)
	}

	for _, id := range ids {
		path := s.segPath(id)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		seg := &segment{id: id, f: f, size: fi.Size()}
		trusted := ckptSize[id]
		entries := bySeg[id]
		if fi.Size() < trusted {
			// Index/segment mismatch: the checkpoint promises bytes the
			// file does not have. Distrust the checkpoint for this
			// segment entirely and rebuild it by scanning.
			s.stats.MismatchedSegments++
			trusted, entries = 0, nil
		}
		for _, e := range entries {
			if e.Off+int64(e.N) > trusted {
				continue // entry beyond the durable prefix; the scan decides
			}
			k, err := ParseKey(e.K)
			if err != nil {
				continue
			}
			seg.records++
			if _, dup := s.index[k]; dup {
				continue
			}
			s.nextSeq++
			s.index[k] = loc{seg: id, off: e.Off, n: e.N, kind: e.Kind, seq: s.nextSeq}
			seg.live++
		}
		// Scan everything past the trusted prefix: records spilled after
		// the last checkpoint, or the whole file on mismatch.
		valid, scanned, torn, err := s.scanSegment(seg, trusted)
		if err != nil {
			f.Close()
			return err
		}
		s.stats.RecoveredRecords += uint64(scanned)
		if torn {
			s.stats.TruncatedTails++
		}
		if valid < seg.size {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return err
			}
			seg.size = valid
		}
		s.segs[id] = seg
		s.order = append(s.order, id)
		s.nextSeg = id + 1
	}
	if ckpt.NextSeg > s.nextSeg {
		s.nextSeg = ckpt.NextSeg
	}
	// Checkpoint entries pointing at segments missing on disk were simply
	// never added: the map lookups above only cover on-disk ids.
	s.refreshGauges()
	return nil
}

// scanSegment replays records from offset from, indexing each complete
// line. It returns the end of the last complete record, how many records
// it indexed, and whether a torn or malformed tail was found.
func (s *Store) scanSegment(seg *segment, from int64) (valid int64, scanned int, torn bool, err error) {
	if _, err := seg.f.Seek(from, io.SeekStart); err != nil {
		return 0, 0, false, err
	}
	r := bufio.NewReader(seg.f)
	valid = from
	for {
		ln, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A partial line at EOF is a torn write from a crash mid-spill.
			return valid, scanned, len(ln) > 0, nil
		}
		if err != nil {
			return 0, 0, false, err
		}
		rec, err := decodeLine(ln)
		if err != nil {
			// Malformed interior line: everything from here is suspect.
			// Cache semantics make truncation safe.
			return valid, scanned, true, nil
		}
		k, kerr := ParseKey(rec.K)
		if kerr != nil {
			return valid, scanned, true, nil
		}
		seg.records++
		if _, dup := s.index[k]; !dup {
			s.nextSeq++
			s.index[k] = loc{seg: seg.id, off: valid, n: len(ln), kind: rec.T, seq: s.nextSeq}
			seg.live++
			scanned++
		}
		valid += int64(len(ln))
	}
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf(segPrefix+"%08d"+segSuffix, id))
}

// Get returns the payload stored under k. A record that fails to read
// back (evicted concurrently, or corrupted inside a checkpoint-trusted
// prefix) is treated as a miss and its index entry dropped — the store
// self-heals instead of serving bad bytes.
func (s *Store) Get(k Key) (kind uint8, data []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[k]
	if !ok {
		s.stats.Misses++
		return 0, nil, false
	}
	rec, err := s.readLocked(k, l)
	if err != nil {
		delete(s.index, k)
		if seg := s.segs[l.seg]; seg != nil {
			seg.live--
		}
		s.stats.Misses++
		s.refreshGauges()
		return 0, nil, false
	}
	s.stats.Hits++
	return rec.Kind, rec.Data, true
}

// Has reports whether k is indexed (without touching disk or hit/miss
// counters — it exists for sync negotiation, not for lookups).
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// GetRecord is Get returning the full Record shape (for sync transfers).
func (s *Store) GetRecord(k Key) (Record, bool) {
	kind, data, ok := s.Get(k)
	if !ok {
		return Record{}, false
	}
	return Record{Key: k, Kind: kind, Data: data}, true
}

// readLocked reads and validates one record. Caller holds mu.
func (s *Store) readLocked(k Key, l loc) (Record, error) {
	seg := s.segs[l.seg]
	if seg == nil {
		return Record{}, fmt.Errorf("memostore: segment %d gone", l.seg)
	}
	buf := make([]byte, l.n)
	if _, err := seg.f.ReadAt(buf, l.off); err != nil {
		return Record{}, err
	}
	rec, err := decodeLine(buf)
	if err != nil {
		return Record{}, err
	}
	gotK, err := ParseKey(rec.K)
	if err != nil {
		return Record{}, err
	}
	if gotK != k {
		return Record{}, fmt.Errorf("memostore: key mismatch at seg %d off %d", l.seg, l.off)
	}
	return Record{Key: k, Kind: rec.T, Data: rec.D}, nil
}

// Put appends a record under k if the key is not already present.
// Payloads are deterministic functions of their keys, so overwriting is
// pointless; put-if-absent keeps segments duplicate-free.
func (s *Store) Put(k Key, kind uint8, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(Record{Key: k, Kind: kind, Data: data})
}

// PutBatch appends every absent record in recs (the sync pull path).
func (s *Store) PutBatch(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if err := s.putLocked(r); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) putLocked(r Record) error {
	if s.closed {
		return fmt.Errorf("memostore: closed")
	}
	if _, ok := s.index[r.Key]; ok {
		return nil
	}
	seg, err := s.appendSegLocked()
	if err != nil {
		return err
	}
	data, err := json.Marshal(line{K: r.Key.String(), T: r.Kind, D: r.Data})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := seg.f.WriteAt(data, seg.size); err != nil {
		return err
	}
	s.nextSeq++
	s.index[r.Key] = loc{seg: seg.id, off: seg.size, n: len(data), kind: r.Kind, seq: s.nextSeq}
	seg.size += int64(len(data))
	seg.records++
	seg.live++
	s.stats.Spills++
	s.unckpt++
	s.enforceBudgetLocked()
	if s.unckpt >= checkpointEvery {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	s.refreshGauges()
	return nil
}

// appendSegLocked returns the active append segment, rolling to a fresh
// one when the current segment reached the per-segment target size.
func (s *Store) appendSegLocked() (*segment, error) {
	if n := len(s.order); n > 0 {
		seg := s.segs[s.order[n-1]]
		if seg.size < s.segTarget {
			return seg, nil
		}
	}
	id := s.nextSeg
	s.nextSeg++
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, f: f}
	s.segs[id] = seg
	s.order = append(s.order, id)
	return seg, nil
}

// enforceBudgetLocked brings total segment bytes back under the budget by
// retiring the oldest segments: a segment mostly dead is compacted (its
// live records re-appended to the active segment, the file dropped),
// while a mostly-live one is evicted outright — the LRU trade: old
// records cost a re-execution to recover, which is exactly what the memo
// saved once already.
func (s *Store) enforceBudgetLocked() {
	for s.totalBytesLocked() > s.maxBytes && len(s.order) > 1 {
		oldest := s.segs[s.order[0]]
		if oldest.live > 0 && oldest.live*2 < oldest.records {
			s.compactSegLocked(oldest)
			s.stats.Compactions++
		} else {
			s.dropSegLocked(oldest)
			s.stats.Evictions++
		}
	}
}

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// compactSegLocked rewrites seg's live records into the active segment
// and removes seg. Records that fail to read back are silently dropped
// (cache semantics).
func (s *Store) compactSegLocked(seg *segment) {
	var keep []Record
	for k, l := range s.index {
		if l.seg != seg.id {
			continue
		}
		if rec, err := s.readLocked(k, l); err == nil {
			keep = append(keep, rec)
		}
		delete(s.index, k)
	}
	// Deterministic rewrite order keeps recovered stores comparable.
	sort.Slice(keep, func(i, j int) bool {
		return bytes.Compare(keep[i].Key[:], keep[j].Key[:]) < 0
	})
	s.dropSegLocked(seg)
	for _, r := range keep {
		tgt, err := s.appendSegLocked()
		if err != nil {
			return
		}
		data, err := json.Marshal(line{K: r.Key.String(), T: r.Kind, D: r.Data})
		if err != nil {
			continue
		}
		data = append(data, '\n')
		if _, err := tgt.f.WriteAt(data, tgt.size); err != nil {
			return
		}
		s.nextSeq++
		s.index[r.Key] = loc{seg: tgt.id, off: tgt.size, n: len(data), kind: r.Kind, seq: s.nextSeq}
		tgt.size += int64(len(data))
		tgt.records++
		tgt.live++
	}
	s.unckpt++
}

// dropSegLocked removes seg and every index entry pointing at it.
func (s *Store) dropSegLocked(seg *segment) {
	for k, l := range s.index {
		if l.seg == seg.id {
			delete(s.index, k)
		}
	}
	seg.f.Close()
	os.Remove(s.segPath(seg.id))
	delete(s.segs, seg.id)
	for i, id := range s.order {
		if id == seg.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.unckpt++
}

// Compact rewrites every segment, dropping dead bytes, and checkpoints.
// Exposed for tests and maintenance; the budget path compacts lazily.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("memostore: closed")
	}
	old := append([]int(nil), s.order...)
	for _, id := range old {
		seg := s.segs[id]
		if seg == nil {
			continue
		}
		s.compactSegLocked(seg)
		s.stats.Compactions++
	}
	s.refreshGauges()
	return s.checkpointLocked()
}

// Keys returns every indexed key in sorted order.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// KeysSince returns the keys appended after mark (in append order) and
// the new mark — the incremental push-sync cursor. Mark 0 returns
// everything.
func (s *Store) KeysSince(mark uint64) ([]Key, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type ks struct {
		k   Key
		seq uint64
	}
	var picked []ks
	high := mark
	for k, l := range s.index {
		if l.seq > mark {
			picked = append(picked, ks{k, l.seq})
			if l.seq > high {
				high = l.seq
			}
		}
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].seq < picked[j].seq })
	out := make([]Key, len(picked))
	for i, p := range picked {
		out[i] = p.k
	}
	return out, high
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// SpillAsync enqueues a record for background persistence. It never
// blocks: when the queue is full the record is dropped and counted — the
// execution it memoizes will simply run again someday and re-spill.
func (s *Store) SpillAsync(k Key, kind uint8, data []byte) {
	select {
	case s.spillCh <- spillMsg{rec: Record{Key: k, Kind: kind, Data: data}}:
	default:
		s.mu.Lock()
		s.stats.SpillsDropped++
		s.mu.Unlock()
	}
}

// Flush blocks until every spill enqueued before the call has been
// written. Tests use it to make async spills deterministic; sync uses it
// so KeysSince sees a complete picture.
func (s *Store) Flush() {
	done := make(chan struct{})
	select {
	case s.spillCh <- spillMsg{flush: done}:
		<-done
	default:
		// Queue full of real records: drain by blocking send.
		s.spillCh <- spillMsg{flush: done}
		<-done
	}
}

func (s *Store) spillLoop() {
	defer s.spillWG.Done()
	for msg := range s.spillCh {
		if msg.flush != nil {
			close(msg.flush)
			continue
		}
		_ = s.Put(msg.rec.Key, msg.rec.Kind, msg.rec.Data)
	}
}

// checkpointLocked atomically persists the index: temp file, fsync,
// rename — the same idiom as internal/store checkpoints. Segment files
// are synced first so the checkpointed sizes never promise bytes the OS
// might still lose.
func (s *Store) checkpointLocked() error {
	ck := checkpoint{NextSeg: s.nextSeg}
	for _, id := range s.order {
		seg := s.segs[id]
		if err := seg.f.Sync(); err != nil {
			return err
		}
		ck.Segments = append(ck.Segments, ckptSegment{ID: id, Size: seg.size})
	}
	ents := make([]ckptEntry, 0, len(s.index))
	for k, l := range s.index {
		ents = append(ents, ckptEntry{K: k.String(), Seg: l.seg, Off: l.off, N: l.n, Kind: l.kind})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Seg != ents[j].Seg {
			return ents[i].Seg < ents[j].Seg
		}
		return ents[i].Off < ents[j].Off
	})
	ck.Entries = ents
	data, err := json.Marshal(&ck)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(name)
		return err
	}
	s.unckpt = 0
	s.stats.Checkpoints++
	return nil
}

// Checkpoint persists the index now.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("memostore: closed")
	}
	return s.checkpointLocked()
}

// AddPulled records n records received from a peer (cluster sync).
func (s *Store) AddPulled(n int) {
	s.mu.Lock()
	s.stats.Pulled += uint64(n)
	s.mu.Unlock()
}

// AddPushed records n records sent to a peer (cluster sync).
func (s *Store) AddPushed(n int) {
	s.mu.Lock()
	s.stats.Pushed += uint64(n)
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshGauges()
	return s.stats
}

func (s *Store) refreshGauges() {
	s.stats.Records = len(s.index)
	s.stats.Segments = len(s.order)
	s.stats.Bytes = s.totalBytesLocked()
}

// Close flushes pending spills, checkpoints the index, and closes every
// segment handle. The store is unusable afterwards; extra Closes are
// no-ops.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.Flush()
		close(s.spillCh)
		s.spillWG.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		err = s.checkpointLocked()
		for _, seg := range s.segs {
			seg.f.Close()
		}
		s.closed = true
	})
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func startsWith(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
func endsWith(s, p string) bool   { return len(s) >= len(p) && s[len(s)-len(p):] == p }
