package memostore

// flightCall is one in-flight execution shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	val  any
}

// Do collapses concurrent executions of the same key: the first caller
// for k runs fn and every caller that arrives while it is in flight
// blocks and shares the result (shared=true). The flight table lives on
// the Store so independent engines spilling to one memo store — a
// campaign, a bisect job, and a precheck racing over the same corpus —
// collapse duplicate work across engine boundaries, not just within one
// engine's in-memory cache.
//
// fn's result is shared by reference; callers must treat it as immutable
// (the runner's images and crashes already are). Followers wait without a
// context: leaders hold a worker slot and run promptly, exactly like the
// in-memory compile layer's waiters.
// flightLen reports how many flights are in progress (tests).
func (s *Store) flightLen() int {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	return len(s.flights)
}

func (s *Store) Do(k Key, fn func() any) (val any, shared bool) {
	s.fmu.Lock()
	if c, ok := s.flights[k]; ok {
		s.fmu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &flightCall{done: make(chan struct{})}
	s.flights[k] = c
	s.fmu.Unlock()

	c.val = fn()

	s.fmu.Lock()
	delete(s.flights, k)
	s.fmu.Unlock()
	close(c.done)
	return c.val, false
}
