package memostore

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func testData(i int) []byte {
	return []byte(fmt.Sprintf("payload-%d-%s", i, string(bytes.Repeat([]byte{'x'}, i%7))))
}

// abandon simulates a crash: the store's file handles are closed without
// any flush, checkpoint, or index write — exactly the state a SIGKILL
// leaves on disk (modulo OS page-cache loss, which the mismatch path
// covers separately).
func abandon(s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.closed = true
	close(s.spillCh)
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(i), uint8(i%3), testData(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		kind, data, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("Get(%d): miss", i)
		}
		if kind != uint8(i%3) || !bytes.Equal(data, testData(i)) {
			t.Fatalf("Get(%d): kind %d data %q", i, kind, data)
		}
	}
	if _, _, ok := s.Get(testKey(999)); ok {
		t.Fatal("Get of absent key hit")
	}
	st := s.Stats()
	if st.Hits != 50 || st.Misses != 1 || st.Records != 50 {
		t.Fatalf("stats: %+v", st)
	}
	if st.HitRate() < 0.9 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	k := testKey(1)
	if err := s.Put(k, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, 2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	kind, data, _ := s.Get(k)
	if kind != 1 || string(data) != "first" {
		t.Fatalf("second put overwrote: kind %d data %q", kind, data)
	}
	if got := s.Stats().Spills; got != 1 {
		t.Fatalf("spills %d, want 1 (dup skipped)", got)
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 20; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.Records != 20 {
		t.Fatalf("records %d after clean reopen", st.Records)
	}
	// Clean close checkpointed everything: nothing to rescue by scanning.
	if st.RecoveredRecords != 0 || st.TruncatedTails != 0 || st.MismatchedSegments != 0 {
		t.Fatalf("recovery counters after clean close: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if _, data, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(data, testData(i)) {
			t.Fatalf("Get(%d) after reopen: ok=%v", i, ok)
		}
	}
}

// A crash before any checkpoint: the whole index rebuilds by scanning.
func TestReopenRecoversByScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 30; i++ {
		s.Put(testKey(i), 2, testData(i))
	}
	abandon(s)
	os.Remove(filepath.Join(dir, indexName)) // ensure no checkpoint survived

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.Records != 30 || st.RecoveredRecords != 30 {
		t.Fatalf("scan recovery: %+v", st)
	}
	for i := 0; i < 30; i++ {
		if _, data, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(data, testData(i)) {
			t.Fatalf("Get(%d) after scan recovery failed", i)
		}
	}
}

// A SIGKILL mid-spill leaves a torn final line; recovery truncates it and
// keeps every complete record.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 10; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	segPath := s.segPath(s.order[len(s.order)-1])
	abandon(s)

	f, err := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"dead`) // torn mid-record, no newline
	f.Close()

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedTails != 1 {
		t.Fatalf("truncated tails %d, want 1 (%+v)", st.TruncatedTails, st)
	}
	if st.Records != 10 {
		t.Fatalf("records %d, want 10", st.Records)
	}
	// The torn bytes are gone from disk: a further reopen is clean.
	s2.Close()
	s3 := mustOpen(t, dir, 0)
	defer s3.Close()
	if st := s3.Stats(); st.TruncatedTails != 0 || st.Records != 10 {
		t.Fatalf("second reopen: %+v", st)
	}
}

// A malformed interior line (disk corruption past the checkpointed
// prefix) truncates from the bad line; earlier records survive.
func TestMalformedInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 5; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	segPath := s.segPath(s.order[len(s.order)-1])
	abandon(s)
	os.Remove(filepath.Join(dir, indexName))

	f, _ := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("not json at all\n")
	f.WriteString(`{"k":"0000","t":1}` + "\n") // bad key length after bad line
	f.Close()

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.Records != 5 || st.TruncatedTails != 1 {
		t.Fatalf("interior corruption: %+v", st)
	}
}

// A checkpoint that promises more bytes than the segment holds (the OS
// dropped un-synced data in a crash) distrusts the checkpoint for that
// segment and rebuilds it by scanning what survived.
func TestIndexSegmentMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 12; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segPath := s.segPath(s.order[len(s.order)-1])
	var keep int64
	{
		// Cut the segment to the end of the 4th record.
		data, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := 0, 0; i < len(data); i++ {
			if data[i] == '\n' {
				n++
				if n == 4 {
					keep = int64(i + 1)
					break
				}
			}
		}
	}
	abandon(s)
	if err := os.Truncate(segPath, keep); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.MismatchedSegments != 1 {
		t.Fatalf("mismatched segments %d (%+v)", st.MismatchedSegments, st)
	}
	if st.Records != 4 {
		t.Fatalf("records %d, want the 4 surviving", st.Records)
	}
	for i := 0; i < 4; i++ {
		if _, _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("surviving record %d lost", i)
		}
	}
	for i := 4; i < 12; i++ {
		if _, _, ok := s2.Get(testKey(i)); ok {
			t.Fatalf("lost record %d served from a stale index", i)
		}
	}
}

// A checkpoint referencing a deleted segment (crash between a
// compaction's file removal and its checkpoint) drops those entries.
func TestCheckpointMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	// Force at least two segments by exceeding the per-segment target.
	big := bytes.Repeat([]byte{'y'}, 64<<10)
	for i := 0; i < 10; i++ {
		s.Put(testKey(i), 1, big)
	}
	if len(s.order) < 2 {
		t.Fatalf("want >=2 segments, have %d", len(s.order))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	firstSeg := s.order[0]
	victim := s.segPath(firstSeg)
	abandon(s)
	os.Remove(victim)

	s2 := mustOpen(t, dir, 1<<20)
	defer s2.Close()
	st := s2.Stats()
	if st.Records == 0 || st.Records >= 10 {
		t.Fatalf("records %d: want some lost with the segment, some kept", st.Records)
	}
	for i := 0; i < 10; i++ {
		if _, data, ok := s2.Get(testKey(i)); ok && !bytes.Equal(data, big) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

// Crash mid-compaction, modeled at the on-disk level: the old segment is
// gone, its live records were re-appended (some now duplicated), and the
// checkpoint still references the removed file. Recovery must keep
// exactly one live copy per key.
func TestKillMidCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	for i := 0; i < 8; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seg := s.order[len(s.order)-1]
	segPath := s.segPath(seg)
	abandon(s)

	// "Compaction" re-appended 3 records into a new segment, then died
	// before removing dup sources or checkpointing.
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf(segPrefix+"%08d"+segSuffix, seg+1)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(segPath)
	lines := bytes.SplitAfter(data, []byte("\n"))
	for i := 0; i < 3 && i < len(lines); i++ {
		f.Write(lines[i])
	}
	f.Close()

	s2 := mustOpen(t, dir, 1<<20)
	defer s2.Close()
	if st := s2.Stats(); st.Records != 8 {
		t.Fatalf("records %d, want 8 (duplicates deduped)", st.Records)
	}
	for i := 0; i < 8; i++ {
		if _, data, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(data, testData(i)) {
			t.Fatalf("record %d wrong after mid-compaction recovery", i)
		}
	}
}

// Abandoning mid-async-spill (SIGKILL with the queue part-drained) leaves
// a clean prefix of the spills; recovery serves exactly those.
func TestKillMidSpill(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 40; i++ {
		s.SpillAsync(testKey(i), 1, testData(i))
	}
	// Don't flush: the spill goroutine drains an unknown prefix. Stop it
	// abruptly, then close handles crash-style.
	s.mu.Lock()
	s.closed = true // further Puts fail, freezing whatever landed
	s.mu.Unlock()
	close(s.spillCh)
	s.spillWG.Wait()
	s.mu.Lock()
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(dir, indexName))

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.Records > 40 {
		t.Fatalf("records %d > spills", st.Records)
	}
	// Whatever landed must read back exactly.
	for i := 0; i < 40; i++ {
		if _, data, ok := s2.Get(testKey(i)); ok && !bytes.Equal(data, testData(i)) {
			t.Fatalf("record %d corrupted by mid-spill crash", i)
		}
	}
}

func TestEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2<<20) // 2 MiB budget -> 256 KiB segment target
	payload := bytes.Repeat([]byte{'z'}, 32<<10)
	for i := 0; i < 200; i++ {
		if err := s.Put(testKey(i), 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	// Budget holds modulo one in-flight segment of slop.
	if st.Bytes > 2<<20+s.segTarget {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	// Newest records survive; oldest were evicted.
	if _, _, ok := s.Get(testKey(199)); !ok {
		t.Fatal("newest record evicted")
	}
	if _, _, ok := s.Get(testKey(0)); ok {
		t.Fatal("oldest record survived a full churn")
	}
	s.Close()
}

func TestCompactPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 25; i++ {
		s.Put(testKey(i), uint8(i%2), testData(i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 25 {
		t.Fatalf("len %d after compact", got)
	}
	for i := 0; i < 25; i++ {
		kind, data, ok := s.Get(testKey(i))
		if !ok || kind != uint8(i%2) || !bytes.Equal(data, testData(i)) {
			t.Fatalf("record %d wrong after compact", i)
		}
	}
	s.Close()
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if got := s2.Len(); got != 25 {
		t.Fatalf("len %d after compact+reopen", got)
	}
}

func TestKeysSince(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put(testKey(i), 1, testData(i))
	}
	all, mark := s.KeysSince(0)
	if len(all) != 5 {
		t.Fatalf("KeysSince(0): %d keys", len(all))
	}
	if more, _ := s.KeysSince(mark); len(more) != 0 {
		t.Fatalf("KeysSince(mark): %d keys, want 0", len(more))
	}
	s.Put(testKey(5), 1, testData(5))
	more, mark2 := s.KeysSince(mark)
	if len(more) != 1 || more[0] != testKey(5) || mark2 <= mark {
		t.Fatalf("incremental KeysSince: %d keys mark %d->%d", len(more), mark, mark2)
	}
}

func TestSpillAsyncFlush(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.SpillAsync(testKey(i), 1, testData(i))
	}
	s.Flush()
	if got := s.Len(); got != 30 {
		t.Fatalf("len %d after flush", got)
	}
}

func TestFlightDo(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	var runs atomic.Int32
	var sharedN atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	k := testKey(7)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared := s.Do(k, func() any {
				runs.Add(1)
				<-release
				return "outcome"
			})
			if shared {
				sharedN.Add(1)
			}
			if v != "outcome" {
				t.Errorf("Do returned %v", v)
			}
		}()
	}
	// Let followers pile up behind the leader, then release.
	for s.flightLen() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times", runs.Load())
	}
	if sharedN.Load() == 0 {
		t.Fatal("no caller observed a shared flight")
	}
	// A later Do after the flight drained runs fresh.
	if _, shared := s.Do(k, func() any { runs.Add(1); return nil }); shared {
		t.Fatal("post-drain Do reported shared")
	}
	if runs.Load() != 2 {
		t.Fatalf("fn ran %d times total", runs.Load())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := testKey(i % 25)
				if i%2 == g%2 {
					s.Put(k, 1, testData(i%25))
				} else {
					if _, data, ok := s.Get(k); ok && !bytes.Equal(data, testData(i%25)) {
						t.Errorf("corrupt concurrent read")
						return
					}
				}
				s.SpillAsync(testKey(1000+i), 2, testData(i))
			}
		}(g)
	}
	wg.Wait()
	s.Flush()
	if s.Len() == 0 {
		t.Fatal("nothing stored")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := testKey(3)
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey round trip: %v %v", got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted junk")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted short key")
	}
}

// The handwritten segment-line decoder must agree with encoding/json on
// every line the store writes, and must never accept a line the generic
// decoder would reject — it falls back instead.
func TestFastLineMatchesJSON(t *testing.T) {
	recs := []line{
		{K: testKey(1).String(), T: 1, D: []byte("payload")},
		{K: testKey(2).String(), T: 2, D: nil}, // no data field (omitempty)
		{K: testKey(3).String(), T: 255, D: []byte{0, 1, 2, 0xff, '"', '\\', '\n'}},
		{K: testKey(4).String(), T: 0, D: bytes.Repeat([]byte{0xaa}, 4096)},
	}
	for i, want := range recs {
		buf, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		fast, ok := fastLine(buf)
		if !ok {
			t.Fatalf("rec %d: fast path rejected a line the store wrote: %s", i, buf)
		}
		if fast.K != want.K || fast.T != want.T || !bytes.Equal(fast.D, want.D) {
			t.Fatalf("rec %d: fast path disagrees: got %+v want %+v", i, fast, want)
		}
		// decodeLine tolerates the trailing newline segments carry.
		dec, err := decodeLine(append(buf, '\n'))
		if err != nil || dec.K != want.K || dec.T != want.T || !bytes.Equal(dec.D, want.D) {
			t.Fatalf("rec %d: decodeLine: %+v %v", i, dec, err)
		}
	}
	// Lines the fast path cannot handle fall back to encoding/json rather
	// than erroring: reordered fields, spaces, escapes in the base64 field.
	odd := fmt.Sprintf(`{"t":7,"k":%q}`, testKey(5).String())
	if rec, err := decodeLine([]byte(odd)); err != nil || rec.T != 7 {
		t.Fatalf("reordered line not decoded: %+v %v", rec, err)
	}
	if _, ok := fastLine([]byte(odd)); ok {
		t.Fatal("fast path claimed a reordered line")
	}
	// Garbage still errors through the fallback.
	if _, err := decodeLine([]byte("{broken")); err == nil {
		t.Fatal("decodeLine accepted garbage")
	}
}
