module spirvfuzz

go 1.22
