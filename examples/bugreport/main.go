// Bugreport reproduces the Figure 3 scenario: a one-instruction delta
// between an original SPIR-V module and a reduced variant that crashes
// SwiftShader — the DontInline function-control bit. The example prints the
// unified delta a developer would attach to the bug report.
//
//	go run ./examples/bugreport
package main

import (
	"fmt"
	"log"
	"strings"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

func main() {
	original := testmod.Caller()
	in := interp.Inputs{W: 8, H: 8}
	sw := target.ByName("SwiftShader")

	// Build a noisy variant: DontInline plus a pile of unrelated
	// transformations, as a fuzzing run would produce.
	ctx := fuzz.NewContext(original.Clone(), in)
	seq := []fuzz.Transformation{
		&fuzz.CopyObject{Fresh: ctx.Mod.Bound, Source: firstConstant(ctx), Block: entryLabel(ctx)},
		&fuzz.SetFunctionControl{Function: ctx.Mod.Functions[0].ID(), Control: 2 /* DontInline */},
		&fuzz.AddTypeInt{Fresh: ctx.Mod.Bound + 1, Width: 32, Signed: false},
	}
	var applied []fuzz.Transformation
	for _, t := range seq {
		if t.Precondition(ctx) {
			t.Apply(ctx)
			applied = append(applied, t)
		}
	}
	variant := ctx.Mod

	if _, crash := sw.Run(original, in); crash != nil {
		log.Fatalf("original crashes: %v", crash)
	}
	_, crash := sw.Run(variant, in)
	if crash == nil {
		log.Fatal("variant does not crash (unexpected)")
	}
	fmt.Printf("SwiftShader crash: %s\n\n", crash.Signature)

	interesting := reduce.CrashInterestingness(sw, in, crash.Signature)
	r := reduce.Reduce(original, in, applied, interesting)
	fmt.Printf("Reduced from %d to %d transformation(s); ", len(applied), len(r.Sequence))
	fmt.Printf("original %d instructions, reduced variant %d.\n\n",
		original.InstructionCount(), r.Variant.InstructionCount())

	fmt.Println("Delta between original (-) and reduced variant (+), Figure 3 style:")
	printDelta(original.String(), r.Variant.String())
	fmt.Println("\nIt is immediately apparent that the bug relates to the handling of")
	fmt.Println("function calls: the only change is the DontInline function control.")
}

// firstConstant returns some constant id from the module's globals section.
func firstConstant(c *fuzz.Context) spirv.ID {
	for _, ins := range c.Mod.TypesGlobals {
		if ins.Op.IsConstant() {
			return ins.Result
		}
	}
	return 0
}

// entryLabel returns the entry block label of the entry-point function.
func entryLabel(c *fuzz.Context) spirv.ID {
	return c.Mod.EntryPointFunction().Entry().Label
}

// printDelta prints a minimal line diff for listings that differ in-place.
func printDelta(a, b string) {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			fmt.Printf("  - %s\n  + %s\n", al[i], bl[i])
		}
	}
	for i := n; i < len(al); i++ {
		fmt.Printf("  - %s\n", al[i])
	}
	for i := n; i < len(bl); i++ {
		fmt.Printf("  + %s\n", bl[i])
	}
}
