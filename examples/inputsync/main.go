// Inputsync demonstrates the paper's first future-work item, implemented as
// an extension: a transformation that modifies a SPIR-V module *and its
// input in sync*. ScaleUniform doubles a uniform's value in the input file
// and compensates every load in the module with an exact ×0.5, so the
// variant renders the same image — on its own inputs — as the original does
// on the original inputs.
//
//	go run ./examples/inputsync
package main

import (
	"fmt"
	"log"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

func main() {
	item, err := cli.CorpusItem("matrix1")
	if err != nil {
		log.Fatal(err)
	}
	want, err := interp.Render(item.Mod, item.Inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: uniform u_one = %v, image hash %s\n",
		item.Inputs.Uniforms["u_one"], want.Hash())

	ctx := fuzz.NewContext(item.Mod.Clone(), item.Inputs)
	m := ctx.Mod

	// Obfuscate a constant through the uniform first (so there is a load to
	// compensate), then scale.
	var uniformVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && ins.Operands[0] == spirv.StorageUniformConstant {
			if v, ok := ctx.UniformValue(ins.Result); ok && v.Kind == interp.KindFloat && v.F == 1 {
				uniformVar = ins.Result
			}
		}
	}
	fn := m.EntryPointFunction()
	var user *spirv.Instruction
	var opIdx int
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			for _, oi := range ins.IDOperandIndices() {
				if ins.Result != 0 && ctx.ConstantMatchesValue(spirv.ID(ins.Operands[oi]), interp.FloatVal(1)) {
					user, opIdx = ins, oi
				}
			}
		}
	}
	if user == nil || uniformVar == 0 {
		log.Fatal("no obfuscation opportunity found")
	}
	half := m.EnsureConstantFloat(0.5) // allocate before reserving fresh ids
	freshLoad := m.Bound
	seq := []fuzz.Transformation{
		&fuzz.ReplaceConstantWithUniform{User: user.Result, OperandIndex: opIdx, UniformVar: uniformVar, FreshLoad: freshLoad},
		&fuzz.ScaleUniform{UniformVar: uniformVar, HalfConst: half,
			FreshIDs: map[spirv.ID]spirv.ID{freshLoad: freshLoad + 1}},
	}
	applied := core.ApplySequence(ctx, seq)
	if len(applied) != 2 {
		log.Fatalf("applied %v", applied)
	}

	got, err := interp.Render(ctx.Mod, ctx.Inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variant:  uniform u_one = %v (doubled in the input), image hash %s\n",
		ctx.Inputs.Uniforms["u_one"], got.Hash())
	if !got.Equal(want) {
		log.Fatal("images differ — extension broken")
	}
	fmt.Println("images identical: the module and its input changed together,")
	fmt.Println("so Semantics(P', I') = Semantics(P, I) exactly (Definition 2.4).")

	// And the reducer can still strip the pair: if the bug only needs the
	// obfuscation, ScaleUniform is dropped; if it needs neither, both go.
	bug := func(mod *spirv.Module) bool { // pretend the obfuscated load is the trigger
		found := false
		mod.ForEachInstruction(func(ins *spirv.Instruction) {
			if ins.Op == spirv.OpLoad && ins.IDOperand(0) == uniformVar {
				found = true
			}
		})
		return found
	}
	kept, _ := core.Reduce(len(seq), func(keep []int) bool {
		c2, _ := fuzz.ReplaySubsequenceContext(item.Mod, item.Inputs, seq, keep)
		return bug(c2.Mod)
	})
	fmt.Printf("reduction against a load-triggered bug keeps %d of %d transformations\n", len(kept), len(seq))
}
