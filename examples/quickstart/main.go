// Quickstart: the full transformation-based testing loop in-process —
// fuzz a reference shader until a simulated target misbehaves, minimize the
// transformation sequence with delta debugging, and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

func main() {
	refs := corpus.References()
	donors := corpus.Donors()
	targets := target.All()

	fmt.Println("quickstart: fuzzing references until a target misbehaves...")
	var bug *harness.Outcome
	for seed := int64(0); seed < 500 && bug == nil; seed++ {
		item := refs[int(seed)%len(refs)]
		for _, tg := range targets {
			o, err := harness.RunOne(harness.ToolSpirvFuzz, item, seed, tg, donors)
			if err != nil {
				log.Fatal(err)
			}
			if o.Bug() {
				bug = o
				break
			}
		}
	}
	if bug == nil {
		log.Fatal("no bug found in 500 seeds (unexpected)")
	}
	fmt.Printf("  seed %d on reference %q triggers %q on target %s\n",
		bug.Seed, bug.Reference, bug.Signature, bug.Target)
	fmt.Printf("  variant: %d instructions (original %d), %d transformations\n\n",
		bug.Variant.InstructionCount(), bug.Original.InstructionCount(), len(bug.Transformations))

	fmt.Println("quickstart: reducing with delta debugging (Section 3.4)...")
	tg := target.ByName(bug.Target)
	interesting := reduce.ForOutcome(tg, bug.Original, bug.Inputs, bug.Signature)
	r := reduce.Reduce(bug.Original, bug.Inputs, bug.Transformations, interesting)
	fmt.Printf("  %d -> %d transformations in %d interestingness queries\n",
		len(bug.Transformations), len(r.Sequence), r.Queries)
	fmt.Printf("  reduced variant: %d instructions; delta vs original: %d instructions\n\n",
		r.Variant.InstructionCount(), r.Delta)

	fmt.Println("quickstart: the minimized transformation sequence:")
	for i, t := range r.Sequence {
		fmt.Printf("  T%d: %s\n", i+1, t.Type())
	}
	types := core.SortedTypes(core.TypeSet(r.Sequence, fuzz.SupportingTypes()))
	fmt.Printf("\nquickstart: deduplication type set (supporting types ignored): %v\n", types)
	fmt.Println("quickstart: report the bug as the pair (original, reduced variant) — both")
	fmt.Println("compute the same image, yet the target treats them differently.")
}
