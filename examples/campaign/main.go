// Campaign runs a miniature end-to-end evaluation: a fuzzing campaign over
// all nine simulated targets, reduction of every crash bug found, and
// transformation-type deduplication — the Table 4 pipeline at small scale.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

func main() {
	const tests = 60
	fmt.Printf("campaign: %d spirv-fuzz tests against %d targets...\n", tests, len(target.All()))
	res, err := harness.Campaign(harness.ToolSpirvFuzz, tests, 1, corpus.References(), target.All(), corpus.Donors())
	if err != nil {
		log.Fatal(err)
	}
	for _, tg := range target.All() {
		if n := len(res.Signatures[tg.Name]); n > 0 {
			fmt.Printf("  %-14s %d distinct signatures\n", tg.Name, n)
		}
	}

	fmt.Println("\ncampaign: reducing crash bugs (capped at 2 per signature)...")
	perSig := map[string]int{}
	var cases []dedup.Case
	for i, o := range res.BugOutcomes {
		if o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + o.Signature
		if perSig[key] >= 2 {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcome(tg, o.Original, o.Inputs, o.Signature)
		r := reduce.Reduce(o.Original, o.Inputs, o.Transformations, interesting)
		fmt.Printf("  %-14s %-55q  %2d -> %2d transformations, delta %d\n",
			o.Target, clip(o.Signature, 52), len(o.Transformations), len(r.Sequence), r.Delta)
		cases = append(cases, dedup.Case{
			Name:      fmt.Sprintf("%s/case%d", o.Target, i),
			Sequence:  r.Sequence,
			Signature: o.Signature,
		})
	}

	fmt.Println("\ncampaign: deduplication recommendations (Figure 6):")
	recommended := dedup.Recommend(cases)
	ignore := fuzz.SupportingTypes()
	for _, c := range recommended {
		fmt.Printf("  %-28s types=%v\n", c.Name, core.SortedTypes(core.TypeSet(c.Sequence, ignore)))
	}
	distinct, dups := dedup.Score(recommended)
	fmt.Printf("\ncampaign: %d cases, %d ground-truth signatures; %d reports covering %d distinct (%d duplicates)\n",
		len(cases), dedup.SignatureCount(cases), len(recommended), distinct, dups)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
