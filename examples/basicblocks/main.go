// Basicblocks walks through Section 2.1 of the paper on the toy "basic
// blocks" language: it applies the transformation sequence of Figure 4,
// shows that every step preserves the printed output, and then reduces the
// sequence against the hypothetical bug of Figure 5, recovering the
// 1-minimal subsequence T1, T2, T5.
//
//	go run ./examples/basicblocks
package main

import (
	"fmt"
	"log"

	"spirvfuzz/internal/bblang"
	"spirvfuzz/internal/core"
)

func main() {
	prog := bblang.Figure4Program()
	input := bblang.Figure4Input()
	fmt.Println("Original program (Figure 4), input i=1 j=2 k=true:")
	fmt.Println(indent(prog.String()))
	out, err := bblang.Execute(prog, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Output: %v\n\n", out)

	seq := bblang.Figure4Sequence()
	ctx := bblang.NewContext(prog.Clone(), input)
	names := []string{
		"T1 = SplitBlock(a, 1, b)",
		"T2 = AddDeadBlock(a, c, u)",
		"T3 = AddStore(c, 0, s, i)",
		"T4 = AddLoad(b, 0, v, s)",
		"T5 = ChangeRHS(a, 1, k)",
	}
	for i, t := range seq {
		if err := core.CheckedApply[*bblang.Context](ctx, t); err != nil {
			log.Fatal(err)
		}
		got, err := bblang.Execute(ctx.Prog, ctx.Input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("After %s (output still %v):\n%s\n", names[i], got, indent(ctx.Prog.String()))
	}

	fmt.Println("Suppose the final program triggers a compiler bug that needs a dead")
	fmt.Println("block whose deadness is obfuscated (Figure 5). Delta debugging over the")
	fmt.Println("transformation sequence finds the 1-minimal subsequence:")
	interesting := func(keep []int) bool {
		c := bblang.NewContext(prog.Clone(), input)
		core.ApplySubsequence(c, seq, keep)
		return bblang.Figure5Bug(c.Prog)
	}
	kept, st := core.Reduce(len(seq), interesting)
	fmt.Printf("  kept transformations: %v (after %d interestingness queries)\n", labels(kept), st.Queries)

	final := bblang.NewContext(prog.Clone(), input)
	core.ApplySubsequence(final, seq, kept)
	fmt.Println("\nReduced variant (P3 of Figure 5):")
	fmt.Println(indent(final.Prog.String()))
	got, _ := bblang.Execute(final.Prog, final.Input)
	fmt.Printf("Output: %v — still equivalent to the original.\n", got)
}

func labels(kept []int) []string {
	out := make([]string, len(kept))
	for i, k := range kept {
		out[i] = fmt.Sprintf("T%d", k+1)
	}
	return out
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
