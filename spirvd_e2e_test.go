// End-to-end test of the spirvd daemon: the durability contract is that a
// daemon killed without warning (SIGKILL, no drain) mid-campaign resumes
// from its store on restart and finishes with buckets bitwise-identical to
// an uninterrupted run, re-using journaled steps instead of re-running them.
package spirvfuzz_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"spirvfuzz/internal/service"
)

// buildSpirvd compiles the daemon binary once per test run.
func buildSpirvd(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "spirvd")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/spirvd").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches spirvd over storeDir and returns the process and its
// bound address (discovered via -portfile).
func startDaemon(t *testing.T, bin, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, "-store", storeDir, "-addr", "127.0.0.1:0", "-portfile", portFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := os.ReadFile(portFile)
		if err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its portfile")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// client runs a spirvd client verb and returns stdout.
func client(t *testing.T, bin, addr string, args ...string) []byte {
	t.Helper()
	full := append([]string{"client", args[0], "-addr", addr}, args[1:]...)
	out, err := exec.Command(bin, full...).Output()
	if err != nil {
		stderr := ""
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = string(ee.Stderr)
		}
		t.Fatalf("spirvd %v: %v\n%s", full, err, stderr)
	}
	return out
}

func campaignStatus(t *testing.T, bin, addr, id string) service.CampaignStatus {
	t.Helper()
	var st service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, addr, "status", id), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, bin, addr, id string, timeout time.Duration) service.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := campaignStatus(t, bin, addr, id)
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s: %+v", id, st.State, st)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

var specArgs = []string{"-tests", "20", "-reduce-slowdown-ms", "25"}

func TestSpirvdKillResumeBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon end-to-end skipped in -short mode")
	}
	bin := buildSpirvd(t)

	// Uninterrupted reference run.
	refCmd, refAddr := startDaemon(t, bin, filepath.Join(t.TempDir(), "store-ref"))
	defer refCmd.Process.Kill()
	var refStatus service.CampaignStatus
	submitOut := client(t, bin, refAddr, append([]string{"submit", "-wait"}, specArgs...)...)
	if err := json.Unmarshal(submitOut, &refStatus); err != nil {
		t.Fatal(err)
	}
	if refStatus.State != service.StateDone || refStatus.Buckets == 0 || refStatus.Reduced < 2 {
		t.Fatalf("reference campaign too small to interrupt meaningfully: %+v", refStatus)
	}
	refBuckets := client(t, bin, refAddr, "buckets", "-campaign", refStatus.ID)
	// Graceful shutdown path: SIGTERM drains and exits cleanly.
	refCmd.Process.Signal(syscall.SIGTERM)
	if err := refCmd.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown: %v", err)
	}

	// Interrupted run over its own store: same spec, killed mid-reduction.
	storeDir := filepath.Join(t.TempDir(), "store-victim")
	victim, addr := startDaemon(t, bin, storeDir)
	var status service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, addr, append([]string{"submit"}, specArgs...)...), &status); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := campaignStatus(t, bin, addr, status.ID)
		if st.Reduced >= 1 && st.State == service.StateReducing {
			break
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			t.Fatalf("campaign finished before the kill landed (raise -reduce-slowdown-ms): %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached mid-reduction: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// SIGKILL: no drain, no journal sync, possibly a torn trailing record.
	victim.Process.Kill()
	victim.Wait()

	// Restart over the same store; the campaign resumes and finishes.
	revived, addr2 := startDaemon(t, bin, storeDir)
	defer func() {
		revived.Process.Signal(syscall.SIGTERM)
		revived.Wait()
	}()
	resumed := waitDone(t, bin, addr2, status.ID, 3*time.Minute)
	if resumed.State != service.StateDone {
		t.Fatalf("resumed campaign: %+v", resumed)
	}
	if resumed.SkippedTests == 0 || resumed.SkippedReductions == 0 {
		t.Fatalf("resume re-ran journaled steps: %+v", resumed)
	}

	// The resumed bucket set must be bitwise-identical to the reference.
	resumedBuckets := client(t, bin, addr2, "buckets", "-campaign", status.ID)
	if string(resumedBuckets) != string(refBuckets) {
		t.Fatalf("buckets diverged after kill+resume:\n%s\nvs uninterrupted\n%s", resumedBuckets, refBuckets)
	}

	// Metrics must show journaled steps skipped (checkpoint reuse) on the
	// revived daemon.
	var metrics service.Metrics
	if err := json.Unmarshal(client(t, bin, addr2, "metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.JobsSkipped == 0 {
		t.Fatalf("revived daemon reports no skipped jobs: %+v", metrics)
	}
	if metrics.CampaignsDone != 1 {
		t.Fatalf("metrics %+v", metrics)
	}
	// The embedded runner stats must surface the phase-split counters: the
	// revived daemon ran at least the resumed tail of the campaign, so it
	// compiled modules and profiled optimizer passes.
	if metrics.Runner.CompileMisses == 0 {
		t.Fatalf("metrics report no compiles: %+v", metrics.Runner)
	}
	if len(metrics.Runner.OptPasses) == 0 {
		t.Fatalf("metrics report no per-pass optimizer stats: %+v", metrics.Runner)
	}

	// A bucket's report blob is served and is spirv-dedup-compatible.
	var sets []service.BucketSet
	if err := json.Unmarshal(resumedBuckets, &sets); err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0].Buckets) == 0 {
		t.Fatalf("bucket sets: %+v", sets)
	}
	report := client(t, bin, addr2, "report", sets[0].Buckets[0].ReportHash)
	var rep struct {
		Signature       string          `json:"signature"`
		Transformations json.RawMessage `json:"transformations"`
	}
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Signature != sets[0].Buckets[0].Signature || len(rep.Transformations) == 0 {
		t.Fatalf("report blob malformed: %s", report)
	}
}
