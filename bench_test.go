// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4), plus performance benchmarks of the substrate and ablations of
// the Section 2.3 design principles. Run with:
//
//	go test -bench=. -benchmem
//
// Experiment scale follows -short (tiny) or the default (small); use
// cmd/gfauto -tests 10000 for paper-scale runs. Shape metrics are attached
// to each benchmark via b.ReportMetric.
package spirvfuzz_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spirvfuzz/internal/bblang"
	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/cluster"
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/experiments"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/store"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

// campaigns are shared by the table/figure benchmarks; building them once
// keeps `go test -bench=.` fast while still exercising the full pipeline.
var (
	campaignOnce sync.Once
	campaignData *experiments.Campaigns
	campaignErr  error
)

func sharedCampaigns(b *testing.B) *experiments.Campaigns {
	b.Helper()
	campaignOnce.Do(func() {
		cfg := experiments.Config{Tests: 120, Groups: 6, CapPerSignature: 3}
		if testing.Short() {
			cfg = experiments.Config{Tests: 40, Groups: 4, CapPerSignature: 2}
		}
		campaignData, campaignErr = experiments.RunCampaigns(cfg)
	})
	if campaignErr != nil {
		b.Fatal(campaignErr)
	}
	return campaignData
}

// BenchmarkTable3BugFinding regenerates Table 3: distinct bug signatures per
// tool configuration with Mann-Whitney U confidences. Shape target: the
// spirv-fuzz total exceeds the glsl-fuzz total and the overall confidence is
// high; glsl-fuzz finds nothing on spirv-opt.
func BenchmarkTable3BugFinding(b *testing.B) {
	c := sharedCampaigns(b)
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(c)
	}
	all := rows[len(rows)-1]
	b.ReportMetric(float64(all.TotalFuzz), "sigs-spirv-fuzz")
	b.ReportMetric(float64(all.TotalSimple), "sigs-simple")
	b.ReportMetric(float64(all.TotalGlsl), "sigs-glsl-fuzz")
	b.ReportMetric(100*all.ConfVsGlsl, "conf-vs-glsl-%")
	b.ReportMetric(100*all.ConfVsSimple, "conf-vs-simple-%")
	if all.TotalFuzz <= all.TotalGlsl {
		b.Fatalf("shape violated: spirv-fuzz %d <= glsl-fuzz %d", all.TotalFuzz, all.TotalGlsl)
	}
}

// BenchmarkFigure7Venn regenerates Figure 7: complementarity of the three
// configurations. Shape target: a nonzero spirv-fuzz-only segment.
func BenchmarkFigure7Venn(b *testing.B) {
	c := sharedCampaigns(b)
	var segs []experiments.Figure7Segment
	for i := 0; i < b.N; i++ {
		segs = experiments.Figure7(c)
	}
	all := segs[len(segs)-1].Counts
	b.ReportMetric(float64(all[1]), "only-spirv-fuzz")
	b.ReportMetric(float64(all[4]), "only-glsl-fuzz")
	b.ReportMetric(float64(all[3]), "fuzz-and-simple")
	b.ReportMetric(float64(all[7]), "all-three")
}

// BenchmarkRQ2ReductionQuality regenerates the Section 4.2 comparison:
// median instruction-count deltas after reduction. Shape target: the "free"
// spirv-fuzz reduction beats the hand-crafted glsl-fuzz reducer (paper:
// medians 8 vs 29).
func BenchmarkRQ2ReductionQuality(b *testing.B) {
	c := sharedCampaigns(b)
	var r *experiments.RQ2Result
	for i := 0; i < b.N; i++ {
		r = experiments.RQ2(c)
	}
	b.ReportMetric(r.MedianFuzz, "median-delta-spirv-fuzz")
	b.ReportMetric(r.MedianGlsl, "median-delta-glsl-fuzz")
	b.ReportMetric(r.MedianFuzzUnreduced, "median-unreduced-spirv-fuzz")
	b.ReportMetric(r.MedianGlslUnreduced, "median-unreduced-glsl-fuzz")
	if r.MedianFuzz >= r.MedianGlsl {
		b.Fatalf("shape violated: spirv-fuzz median %v >= glsl-fuzz median %v", r.MedianFuzz, r.MedianGlsl)
	}
}

// BenchmarkTable4Dedup regenerates Table 4: deduplication effectiveness.
// Shape target: over half the distinct crash signatures covered with a low
// duplicate rate (paper: 41/78 covered, 8/49 duplicates).
func BenchmarkTable4Dedup(b *testing.B) {
	c := sharedCampaigns(b)
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4(c)
	}
	total := rows[len(rows)-1]
	b.ReportMetric(float64(total.Tests), "tests")
	b.ReportMetric(float64(total.Sigs), "sigs")
	b.ReportMetric(float64(total.Reports), "reports")
	b.ReportMetric(float64(total.Distinct), "distinct")
	b.ReportMetric(float64(total.Dups), "dups")
	if total.Distinct*2 < total.Sigs {
		b.Fatalf("shape violated: %d distinct of %d sigs", total.Distinct, total.Sigs)
	}
}

// BenchmarkFigure3DontInlineDelta reproduces Figure 3: reduction shrinks a
// noisy SwiftShader-crashing variant to a single SetFunctionControl
// transformation, leaving a one-line delta between two 39-instruction
// modules.
func BenchmarkFigure3DontInlineDelta(b *testing.B) {
	in := interp.Inputs{W: 4, H: 4}
	sw := target.ByName("SwiftShader")
	var seqLen, delta int
	for i := 0; i < b.N; i++ {
		original := testmod.Caller()
		ctx := fuzz.NewContext(original.Clone(), in)
		seq := []fuzz.Transformation{
			&fuzz.AddTypeInt{Fresh: ctx.Mod.Bound, Width: 32, Signed: false},
			&fuzz.SetFunctionControl{Function: ctx.Mod.Functions[0].ID(), Control: spirv.FunctionControlDontInline},
			&fuzz.AddConstantBoolean{Fresh: ctx.Mod.Bound + 1, Value: true},
		}
		applied := core.ApplySequence(ctx, seq)
		_, crash := sw.Run(ctx.Mod, in)
		if crash == nil || len(applied) != len(seq) {
			b.Fatal("Figure 3 crash did not trigger")
		}
		interesting := reduce.CrashInterestingness(sw, in, crash.Signature)
		r := reduce.Reduce(original, in, seq, interesting)
		seqLen, delta = len(r.Sequence), r.Variant.InstructionCount()-original.InstructionCount()
	}
	b.ReportMetric(float64(seqLen), "reduced-transformations")
	b.ReportMetric(float64(delta), "instruction-delta")
	if seqLen != 1 || delta != 0 {
		b.Fatalf("shape violated: %d transformations, delta %d (want 1 and 0)", seqLen, delta)
	}
}

// BenchmarkFigure4BasicBlocks replays the Figure 4 walkthrough on the toy
// basic-blocks language, checking output preservation at each step.
func BenchmarkFigure4BasicBlocks(b *testing.B) {
	input := bblang.Figure4Input()
	for i := 0; i < b.N; i++ {
		ctx := bblang.NewContext(bblang.Figure4Program(), input)
		want, err := bblang.Execute(ctx.Prog, ctx.Input)
		if err != nil {
			b.Fatal(err)
		}
		applied := core.ApplySequence(ctx, bblang.Figure4Sequence())
		if len(applied) != 5 {
			b.Fatalf("applied %d of 5 transformations", len(applied))
		}
		got, err := bblang.Execute(ctx.Prog, ctx.Input)
		if err != nil || !bblang.OutputsEqual(got, want) {
			b.Fatalf("output changed: %v vs %v (%v)", got, want, err)
		}
	}
}

// BenchmarkFigure5Reduction reproduces Figure 5: delta debugging the Figure
// 4 sequence against the dead-block-obfuscation bug yields T1, T2, T5.
func BenchmarkFigure5Reduction(b *testing.B) {
	prog := bblang.Figure4Program()
	input := bblang.Figure4Input()
	seq := bblang.Figure4Sequence()
	var kept []int
	for i := 0; i < b.N; i++ {
		var st core.ReduceStats
		kept, st = core.Reduce(len(seq), func(keep []int) bool {
			c := bblang.NewContext(prog.Clone(), input)
			core.ApplySubsequence(c, seq, keep)
			return bblang.Figure5Bug(c.Prog)
		})
		_ = st
	}
	if len(kept) != 3 || kept[0] != 0 || kept[1] != 1 || kept[2] != 4 {
		b.Fatalf("kept %v, want [0 1 4] (T1, T2, T5)", kept)
	}
	b.ReportMetric(float64(len(kept)), "kept-transformations")
}

// BenchmarkFigure8aMesaBug reproduces the Mesa miscompilation of Figure 8a:
// PropagateInstructionUp on a loop-exit comparison makes the simulated Mesa
// driver skip the last loop iteration.
func BenchmarkFigure8aMesaBug(b *testing.B) {
	in := interp.Inputs{W: 4, H: 4}
	mesa := target.ByName("Mesa")
	var diff int
	for i := 0; i < b.N; i++ {
		m := testmod.Loop()
		orig, crash := mesa.Run(m, in)
		if crash != nil {
			b.Fatal(crash)
		}
		ctx := fuzz.NewContext(m.Clone(), in)
		fn := ctx.Mod.EntryPointFunction()
		cmp := fn.Blocks[2].Body[0]
		tr := &fuzz.PropagateInstructionUp{
			Instr:    cmp.Result,
			FreshIDs: map[spirv.ID]spirv.ID{fn.Blocks[1].Label: ctx.Mod.Bound},
		}
		if err := core.CheckedApply[*fuzz.Context](ctx, tr); err != nil {
			b.Fatal(err)
		}
		got, crash := mesa.Run(ctx.Mod, in)
		if crash != nil {
			b.Fatal(crash)
		}
		diff = got.DiffCount(orig)
	}
	b.ReportMetric(float64(diff), "pixels-changed")
	if diff == 0 {
		b.Fatal("Mesa bug did not fire")
	}
}

// BenchmarkFigure8bPixel5Bug reproduces the Pixel 5 miscompilation of Figure
// 8b: a valid MoveBlockDown reorder produces holes in the rendered image.
func BenchmarkFigure8bPixel5Bug(b *testing.B) {
	in := interp.Inputs{W: 8, H: 8}
	px := target.ByName("Pixel-5")
	var holes int
	for i := 0; i < b.N; i++ {
		m := testmod.Diamond()
		ctx := fuzz.NewContext(m.Clone(), in)
		tr := &fuzz.MoveBlockDown{Block: ctx.Mod.EntryPointFunction().Blocks[1].Label}
		if err := core.CheckedApply[*fuzz.Context](ctx, tr); err != nil {
			b.Fatal(err)
		}
		img, crash := px.Run(ctx.Mod, in)
		if crash != nil {
			b.Fatal(crash)
		}
		holes = 0
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				if img.At(x, y)[3] == 0 {
					holes++
				}
			}
		}
	}
	b.ReportMetric(float64(holes), "holes")
	if holes == 0 {
		b.Fatal("Pixel-5 bug did not fire")
	}
}

// --- ablations of the Section 2.3 / 3.5 design choices ----------------------

// BenchmarkAblationDedupIgnoreList quantifies the Section 3.5 refinement:
// running the Figure 6 algorithm with and without the supporting-type ignore
// list on the campaign's reduced crash cases. Without the list, supporting
// types (present in nearly every sequence) collide, so far fewer reports are
// recommended and coverage drops.
func BenchmarkAblationDedupIgnoreList(b *testing.B) {
	c := sharedCampaigns(b)
	// Reduce a slice of crash outcomes once.
	type redCase struct {
		seq []fuzz.Transformation
		sig string
	}
	var cases []redCase
	perSig := map[string]int{}
	for _, o := range c.Fuzz.BugOutcomes {
		if o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + o.Signature
		if perSig[key] >= 2 {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcome(tg, o.Original, o.Inputs, o.Signature)
		r := reduce.Reduce(o.Original, o.Inputs, o.Transformations, interesting)
		cases = append(cases, redCase{r.Sequence, o.Signature})
		if len(cases) >= 30 {
			break
		}
	}
	if len(cases) < 5 {
		b.Skip("too few crash cases")
	}
	run := func(ignore map[string]bool) (reports, distinct int) {
		tests := make([]core.ReducedTest, len(cases))
		for i, rc := range cases {
			tests[i] = core.ReducedTest{Name: rc.sig + "#" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Types: core.TypeSet(rc.seq, ignore)}
		}
		picked := core.Deduplicate(tests)
		seen := map[string]bool{}
		for _, p := range picked {
			seen[p.Name[:len(p.Name)-3]] = true
		}
		return len(picked), len(seen)
	}
	var withReports, withDistinct, withoutReports, withoutDistinct int
	for i := 0; i < b.N; i++ {
		withReports, withDistinct = run(fuzz.SupportingTypes())
		withoutReports, withoutDistinct = run(map[string]bool{})
	}
	b.ReportMetric(float64(withReports), "reports-with-ignore")
	b.ReportMetric(float64(withDistinct), "distinct-with-ignore")
	b.ReportMetric(float64(withoutReports), "reports-without-ignore")
	b.ReportMetric(float64(withoutDistinct), "distinct-without-ignore")

	// The mechanism, asserted on the Section 3.5 shape directly: two tests
	// for *different* bugs that share only a supporting type (SplitBlock)
	// must both be recommended with the ignore list, but collapse to one
	// without it.
	mk := func(kinds ...string) []core.Transformation[*fuzz.Context] {
		var out []core.Transformation[*fuzz.Context]
		for _, k := range kinds {
			switch k {
			case "split":
				out = append(out, &fuzz.SplitBlock{})
			case "dead":
				out = append(out, &fuzz.AddDeadBlock{})
			case "move":
				out = append(out, &fuzz.MoveBlockDown{})
			}
		}
		return out
	}
	synth := func(ignore map[string]bool) int {
		tests := []core.ReducedTest{
			{Name: "bugA", Types: core.TypeSet(mk("split", "dead"), ignore)},
			{Name: "bugB", Types: core.TypeSet(mk("split", "move"), ignore)},
		}
		return len(core.Deduplicate(tests))
	}
	if got := synth(fuzz.SupportingTypes()); got != 2 {
		b.Fatalf("with ignore list: %d reports, want 2 (both bugs)", got)
	}
	if got := synth(map[string]bool{}); got != 1 {
		b.Fatalf("without ignore list: %d reports, want 1 (collision on SplitBlock)", got)
	}
}

// BenchmarkAblationChunkedVsLinearReduction compares the Section 3.4 chunked
// delta-debugging loop against naive one-at-a-time removal, in
// interestingness queries, on synthetic 200-element sequences where 5
// scattered elements are needed. Chunking needs far fewer queries.
func BenchmarkAblationChunkedVsLinearReduction(b *testing.B) {
	const n = 200
	needed := []int{3, 41, 99, 150, 199}
	test := func(keep []int) bool {
		found := 0
		for _, k := range keep {
			for _, want := range needed {
				if k == want {
					found++
				}
			}
		}
		return found == len(needed)
	}
	var chunked, linear int
	for i := 0; i < b.N; i++ {
		_, st := core.Reduce(n, test)
		chunked = st.Queries
		// Naive linear: try removing each element once, repeatedly.
		keep := make([]int, n)
		for j := range keep {
			keep[j] = j
		}
		linear = 0
		for changed := true; changed; {
			changed = false
			for j := 0; j < len(keep); j++ {
				cand := append(append([]int{}, keep[:j]...), keep[j+1:]...)
				linear++
				if test(cand) {
					keep = cand
					changed = true
					j--
				}
			}
		}
	}
	b.ReportMetric(float64(chunked), "queries-chunked")
	b.ReportMetric(float64(linear), "queries-linear")
}

// BenchmarkRunnerParallelReduce measures the execution engine end to end: a
// spirv-fuzz campaign followed by ddmin reduction of its crash outcomes, on
// the pre-engine serial path (one worker, runner caching and incremental
// replay both disabled) versus the engine (worker pool, content-addressed
// memoization, prefix-snapshot replay cache). Both legs must produce
// bitwise-identical kept indices — the engine's determinism guarantee — and
// the wall-clock ratio, cache hit rate and replay savings are reported as
// metrics.
func BenchmarkRunnerParallelReduce(b *testing.B) {
	refs := corpus.References()
	targets := target.All()
	donors := corpus.Donors()
	tests := 50
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	leg := func(eng *runner.Engine, ddWorkers int, reng *replay.Engine) (time.Duration, [][]int) {
		start := time.Now()
		res, err := harness.CampaignEngine(eng, harness.ToolSpirvFuzz, tests, 2, refs, targets, donors)
		if err != nil {
			b.Fatal(err)
		}
		var kept [][]int
		perSig := map[string]int{}
		for _, o := range res.BugOutcomes {
			if len(o.Transformations) == 0 {
				continue
			}
			key := o.Target + "|" + o.Signature
			if perSig[key] >= 1 {
				continue
			}
			perSig[key]++
			tg := target.ByName(o.Target)
			interesting := reduce.ForOutcomeOn(eng, tg, o.Original, o.Inputs, o.Signature)
			r := reduce.ReduceParallelReplay(o.Original, o.Inputs, o.Transformations, interesting, ddWorkers, reng)
			kept = append(kept, r.Kept)
		}
		if len(kept) == 0 {
			b.Fatal("campaign produced no reducible crash outcomes")
		}
		return time.Since(start), kept
	}

	var speedup, hitRate, replaySaved float64
	var reductions int
	for i := 0; i < b.N; i++ {
		// Take the best of two runs per leg so a CPU-contention spike during
		// either leg does not distort the ratio; each repetition gets a fresh
		// engine, so no state leaks between them.
		var serialTime, parTime time.Duration
		for rep := 0; rep < 2; rep++ {
			serialEng := runner.New(1)
			serialEng.SetCacheCap(0) // pre-engine baseline: no memoization
			st, sk := leg(serialEng, 1, replay.NewEngine(0))

			parEng := runner.New(workers)
			parReplay := replay.NewEngine(replay.DefaultBudget)
			pt, pk := leg(parEng, workers, parReplay)

			if !reflect.DeepEqual(sk, pk) {
				b.Fatalf("parallel reduction diverged from serial:\n%v\nvs\n%v", pk, sk)
			}
			if rep == 0 || st < serialTime {
				serialTime = st
			}
			if rep == 0 || pt < parTime {
				parTime = pt
			}
			hitRate = parEng.Stats().HitRate()
			replaySaved = parReplay.Stats().SavedFraction()
			reductions = len(pk)
		}
		speedup = serialTime.Seconds() / parTime.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(100*hitRate, "cache-hit-%")
	b.ReportMetric(100*replaySaved, "replay-saved-%")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(reductions), "reductions")
}

// BenchmarkEngineRunAll measures the cross-target compile-sharing win on the
// paper's 9-target fan-out: classify a batch of fuzzed variants against every
// target, batched (RunAllCtx: module and inputs hashed once per batch, one
// shared compile per distinct mutation class, one render per distinct
// compiled module) versus the monolithic per-target loop (compile sharing
// disabled, every target compiles for itself). Both legs run on identical
// worker pools and must produce bitwise-identical crash signatures and
// images; the wall-clock ratio and the shared-compile rate are reported.
func BenchmarkEngineRunAll(b *testing.B) {
	refs := corpus.References()
	donors := corpus.Donors()
	targets := target.All()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	type variant struct {
		mod *spirv.Module
		in  interp.Inputs
	}
	type obs struct {
		Sig, Img string
	}
	nVariants := 96
	if testing.Short() {
		nVariants = 60
	}
	variants := make([]variant, nVariants)
	for i := range variants {
		item := refs[i%len(refs)]
		// Campaign-sized pass budgets produce realistic variant sizes, where
		// the compile (clone + mutate + 8-pass pipeline) is the dominant
		// per-target cost the batch amortizes.
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  int64(5000 + i),
			Donors:                donors,
			EnableRecommendations: true,
			MinPasses:             12,
			MaxPasses:             20,
		})
		if err != nil {
			b.Fatal(err)
		}
		in := res.Inputs
		in.W, in.H = 4, 4 // the bench grid of the Figure 3 walkthrough
		variants[i] = variant{mod: res.Variant, in: in}
	}

	// Execution only is timed; images are hashed for the bitwise comparison
	// after the clock stops.
	leg := func(eng *runner.Engine, batched bool) (time.Duration, [][]obs) {
		raw := make([][]runner.TargetResult, len(variants))
		start := time.Now()
		eng.Do(len(variants), func(i int) {
			if batched {
				all, err := eng.RunAllCtx(context.Background(), targets, variants[i].mod, variants[i].in)
				if err != nil {
					b.Error(err)
					return
				}
				raw[i] = all
			} else {
				row := make([]runner.TargetResult, len(targets))
				for j, tg := range targets {
					row[j].Img, row[j].Crash = eng.Run(tg, variants[i].mod, variants[i].in)
				}
				raw[i] = row
			}
		})
		elapsed := time.Since(start)
		out := make([][]obs, len(raw))
		for i, row := range raw {
			out[i] = make([]obs, len(row))
			for j, r := range row {
				if r.Crash != nil {
					out[i][j].Sig = r.Crash.Signature
				}
				if r.Img != nil {
					out[i][j].Img = r.Img.Hash()
				}
			}
		}
		return elapsed, out
	}

	var speedup, sharedPct float64
	for i := 0; i < b.N; i++ {
		// Best of three runs per leg against CPU-contention spikes; fresh
		// engines per repetition so no cache state leaks between legs.
		var loopTime, batchTime time.Duration
		for rep := 0; rep < 3; rep++ {
			loopEng := runner.New(workers)
			loopEng.SetCompileSharing(false)
			lt, lres := leg(loopEng, false)

			batchEng := runner.New(workers)
			bt, bres := leg(batchEng, true)

			if !reflect.DeepEqual(lres, bres) {
				b.Fatalf("batched results diverged from per-target loop")
			}
			if rep == 0 || lt < loopTime {
				loopTime = lt
			}
			if rep == 0 || bt < batchTime {
				batchTime = bt
			}
			st := batchEng.Stats()
			sharedPct = 100 * float64(st.CompileHits) / float64(st.CompileHits+st.CompileMisses)
		}
		speedup = loopTime.Seconds() / batchTime.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(sharedPct, "shared-compile-%")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(len(variants)), "variants")
}

// --- incremental-replay benchmark scenario ----------------------------------

// replayScenario is a deterministic reduction workload shaped like a real
// fuzzing outcome, sized so the replay cost dominates (the interestingness
// decision is a cheap structural check):
//
//   - the original module is pre-grown by donation to a few hundred
//     instructions, so per-transformation replay cost is roughly uniform;
//   - the sequence opens with a block of always-needed donations (donations
//     happen early in fuzzing) — for every ddmin candidate they sit below
//     the divergence point, so the cache serves them from snapshots while
//     the cold leg re-applies them on every query;
//   - a long donor-free fuzzed mid-section follows, every 8th slot
//     removable chaff — the part ddmin actually minimizes;
//   - the tail adds small donated functions padded with dead instructions —
//     the shrink phase deletes the pads one probe at a time, each probe a
//     deep ReplayOverride whose prefix is the entire kept sequence.
type replayScenario struct {
	base   *spirv.Module
	inputs interp.Inputs
	ts     []fuzz.Transformation
	needed map[int]bool
	fns    int // shrink acceptance baseline: function count of kept replay
	blocks int // and its total block count
	kept   []int
}

var (
	replayScenOnce sync.Once
	replayScenVal  *replayScenario
	replayScenErr  error
)

// buildReplayScenario constructs the workload above with target original size
// 550 instructions, a 192-transformation mid-section, 4 front donations and 4
// padded tail donations (130 pads each) — a 200-transformation sequence.
func buildReplayScenario() (*replayScenario, error) {
	const (
		targetInstrs = 550
		mid          = 192
		frontFns     = 4
		tailFns      = 4
		pads         = 130
	)
	donors := corpus.Donors()
	item := corpus.References()[0]
	c0 := fuzz.NewContext(item.Mod.Clone(), item.Inputs)
	for round := 0; round < 20 && c0.Mod.InstructionCount() < targetInstrs; round++ {
		for _, d := range donors {
			for _, fn := range d.Functions {
				for _, tr := range fuzz.Donate(c0, d, fn, true) {
					if tr.Precondition(c0) {
						tr.Apply(c0)
					}
				}
				if c0.Mod.InstructionCount() >= targetInstrs {
					break
				}
			}
			if c0.Mod.InstructionCount() >= targetInstrs {
				break
			}
		}
	}
	base := c0.Mod.Clone()
	baseIn := c0.Inputs

	type dfn struct {
		d  *spirv.Module
		fn *spirv.Function
		sz int
	}
	var all []dfn
	for _, d := range donors {
		for _, fn := range d.Functions {
			sz := 0
			for _, blk := range fn.Blocks {
				sz += len(blk.Body)
			}
			all = append(all, dfn{d, fn, sz})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].sz > all[j].sz })

	// Donations are generated against the base with a gapped id space so
	// their preconditions hold regardless of which mid slots survive ddmin.
	cd := fuzz.NewContext(base.Clone(), baseIn)
	cd.Mod.Bound += 50000
	var front []fuzz.Transformation
	for f := 0; f < frontFns; f++ {
		pick := all[f%len(all)]
		dk := fuzz.Donate(cd, pick.d, pick.fn, true)
		if dk == nil {
			return nil, errFront
		}
		for _, tr := range dk {
			if tr.Precondition(cd) {
				tr.Apply(cd)
			}
		}
		front = append(front, dk...)
	}

	var ts []fuzz.Transformation
	for seed := int64(11); seed < 40; seed++ {
		res, err := fuzz.Fuzz(base, baseIn, fuzz.Options{
			Seed: seed, EnableRecommendations: true,
			MinPasses: mid/2 + 20, MaxPasses: mid/2 + 40,
			MaxTransformations: mid,
		})
		if err == nil && len(res.Transformations) >= mid {
			ts = res.Transformations[:mid]
			break
		}
	}
	if ts == nil {
		return nil, errMid
	}

	small := all[len(all)-1]
	var tail []fuzz.Transformation
	for f := 0; f < tailFns; f++ {
		dk := fuzz.Donate(cd, small.d, small.fn, true)
		if dk == nil {
			return nil, errTail
		}
		af, ok := dk[len(dk)-1].(*fuzz.AddFunction)
		if !ok {
			return nil, errTail
		}
		blk := &af.Blocks[len(af.Blocks)-1]
		var template fuzz.EncodedInstr
		for _, e := range blk.Body {
			ins, decoded := e.Decode()
			if decoded && ins.Result != 0 && !ins.Op.HasSideEffects() && ins.Op != spirv.OpVariable {
				template = e
				break
			}
		}
		if template.Op == "" {
			return nil, errTail
		}
		next := cd.Mod.Bound + 100000 + spirv.ID(f)*10000
		for i := 0; i < pads; i++ {
			dup := template
			dup.Operands = append([]uint32(nil), template.Operands...)
			dup.Result = next
			next++
			blk.Body = append(blk.Body, dup)
		}
		for _, tr := range dk {
			if tr.Precondition(cd) {
				tr.Apply(cd)
			}
		}
		tail = append(tail, dk...)
	}

	seq := append(append(append([]fuzz.Transformation{}, front...), ts...), tail...)
	needed := map[int]bool{}
	for i := range seq {
		inMid := i >= len(front) && i < len(front)+mid
		if !inMid || (i-len(front))%8 != 0 {
			needed[i] = true
		}
	}

	sc := &replayScenario{base: base, inputs: baseIn, ts: seq, needed: needed}
	// Acceptance baseline for the shrink phase comes from the kept replay:
	// chaff removal can strip preconditions of a few mid transformations, so
	// the full sequence's counts overstate what kept candidates reach.
	sess := replay.NewSession(base, baseIn, seq)
	kept, _ := core.Reduce(len(seq), func(keep []int) bool {
		sess.Replay(keep)
		return sc.containsAll(keep)
	})
	ctx, _ := sess.Replay(kept)
	sc.kept = kept
	sc.fns = len(ctx.Mod.Functions)
	for _, fn := range ctx.Mod.Functions {
		sc.blocks += len(fn.Blocks)
	}
	return sc, nil
}

var (
	errFront = errors.New("replay scenario: front donation failed")
	errMid   = errors.New("replay scenario: no mid sequence")
	errTail  = errors.New("replay scenario: tail donation failed")
)

func (sc *replayScenario) containsAll(keep []int) bool {
	m := make(map[int]bool, len(keep))
	for _, k := range keep {
		m[k] = true
	}
	for w := range sc.needed {
		if !m[w] {
			return false
		}
	}
	return true
}

func (sc *replayScenario) shrinkOK(m *spirv.Module, _ interp.Inputs) bool {
	blocks := 0
	for _, fn := range m.Functions {
		blocks += len(fn.Blocks)
	}
	return len(m.Functions) >= sc.fns && blocks >= sc.blocks
}

func sharedReplayScenario(b *testing.B) *replayScenario {
	b.Helper()
	replayScenOnce.Do(func() {
		replayScenVal, replayScenErr = buildReplayScenario()
	})
	if replayScenErr != nil {
		b.Fatal(replayScenErr)
	}
	return replayScenVal
}

// reduceLeg runs the full reduction pipeline — ddmin over sess.Replay, the
// AddFunction shrink pass over ReplayOverride/Commit, and the final kept
// replay — against one replay engine, and returns wall time, kept indices,
// and total queries. This is ReduceParallelReplay's exact serial control
// flow, with the interestingness check replaced by a structural one so the
// measured cost is variant materialization.
func (sc *replayScenario) reduceLeg(reng *replay.Engine) (time.Duration, []int, int) {
	sess := reng.NewSession(sc.base, sc.inputs, sc.ts)
	start := time.Now()
	kept, st := core.Reduce(len(sc.ts), func(keep []int) bool {
		sess.Replay(keep)
		return sc.containsAll(keep)
	})
	queries := st.Queries
	queries += reduce.ShrinkAddFunctionsForTest(sess, kept, sc.shrinkOK)
	sess.Replay(kept)
	return time.Since(start), kept, queries
}

// BenchmarkReplayPrefixCache measures an end-to-end reduction — ddmin to
// 1-minimality plus the AddFunction shrink pass — over a 200-transformation
// sequence (replayScenario above), cache-enabled versus cache-disabled. Both
// legs issue the same query stream and must produce identical kept indices;
// the only difference is variant materialization: a fresh replay of every
// kept transformation versus a clone of the deepest cached prefix snapshot
// plus the suffix. Reported metrics: wall-clock speedup, warm queries/sec,
// mean applied suffix length (vs. the ~178-transformation mean request), and
// prefix hit rate.
func BenchmarkReplayPrefixCache(b *testing.B) {
	sc := sharedReplayScenario(b)
	b.ResetTimer()

	var speedup, qps, meanSuffix, meanReq, hitRate float64
	for i := 0; i < b.N; i++ {
		var coldTime, warmTime time.Duration
		var queries int
		for rep := 0; rep < 3; rep++ { // best-of-three against CPU-contention spikes
			ct, coldKept, _ := sc.reduceLeg(replay.NewEngine(0))
			reng := replay.NewEngine(replay.DefaultBudget)
			wt, warmKept, q := sc.reduceLeg(reng)
			if !reflect.DeepEqual(coldKept, warmKept) || !reflect.DeepEqual(coldKept, sc.kept) {
				b.Fatalf("cached reduction diverged: kept %v vs %v", warmKept, coldKept)
			}
			if rep == 0 || ct < coldTime {
				coldTime = ct
			}
			if rep == 0 || wt < warmTime {
				warmTime = wt
			}
			queries = q
			rst := reng.Stats()
			meanSuffix = rst.MeanSuffix()
			meanReq = rst.MeanRequested()
			hitRate = rst.HitRate()
		}
		speedup = coldTime.Seconds() / warmTime.Seconds()
		qps = float64(queries) / warmTime.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(qps, "queries/sec")
	b.ReportMetric(meanSuffix, "mean-suffix")
	b.ReportMetric(meanReq, "mean-requested")
	b.ReportMetric(100*hitRate, "prefix-hit-%")
	b.ReportMetric(float64(len(sc.ts)), "seq-len")
}

// benchWaitCampaign polls a service until the campaign leaves the running
// states (the in-process analogue of `spirvd client submit -wait`).
func benchWaitCampaign(b *testing.B, svc *service.Service, id string) service.CampaignStatus {
	b.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for {
		st, ok := svc.Campaign(id)
		if !ok {
			b.Fatalf("campaign %s disappeared", id)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			if st.State != service.StateDone {
				b.Fatalf("campaign %s failed: %s", id, st.Error)
			}
			return st
		}
		if time.Now().After(deadline) {
			b.Fatalf("campaign %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// BenchmarkServiceResumeCampaign measures the checkpoint/resume overhead of
// the spirvd pipeline against the cost of a fresh campaign. Three legs over
// one store: (1) fresh — full fuzz + classify + reduce + bucket; (2) journal
// resume — the bucket checkpoint is deleted, so a restarted service must
// re-drive the pipeline, but every fuzz and reduce step is journaled and
// skipped, leaving only the deterministic bucket rebuild; (3) checkpoint
// resume — the restarted service serves the bucket set straight from the
// checkpoint without submitting a single job. Shape targets: both resume
// legs reproduce the fresh buckets exactly, and the guarded speedup
// (fresh / journal resume) is far above 1.
func BenchmarkServiceResumeCampaign(b *testing.B) {
	spec := service.CampaignSpec{Tests: 20}
	if testing.Short() {
		spec.Tests = 12
	}
	var speedup, journalMS, ckptMS float64
	for i := 0; i < b.N; i++ {
		var freshBest, journalBest, ckptBest time.Duration
		for rep := 0; rep < 3; rep++ { // best-of-three against CPU-contention spikes
			freshTime, journalTime, ckptTime := resumeLegs(b, spec)
			if rep == 0 || freshTime < freshBest {
				freshBest = freshTime
			}
			if rep == 0 || journalTime < journalBest {
				journalBest = journalTime
			}
			if rep == 0 || ckptTime < ckptBest {
				ckptBest = ckptTime
			}
		}
		speedup = freshBest.Seconds() / journalBest.Seconds()
		journalMS = float64(journalBest.Microseconds()) / 1000
		ckptMS = float64(ckptBest.Microseconds()) / 1000
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(journalMS, "journal-resume-ms")
	b.ReportMetric(ckptMS, "ckpt-resume-ms")
}

// resumeLegs drives one fresh campaign and the two resume paths over a
// single throwaway store, returning the wall time of each leg.
func resumeLegs(b *testing.B, spec service.CampaignSpec) (fresh, journal, ckpt time.Duration) {
	b.Helper()
	dir := b.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	svc1, err := service.New(st1, service.Options{})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	created, err := svc1.CreateCampaign(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchWaitCampaign(b, svc1, created.ID)
	fresh = time.Since(start)
	freshBuckets, err := svc1.Buckets(created.ID)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc1.Close(context.Background()); err != nil {
		b.Fatal(err)
	}

	// Journal-resume leg: without the checkpoint the campaign reverts to
	// pending and the pipeline re-runs with every journaled step skipped.
	ckptFile := filepath.Join(dir, "checkpoints", "buckets-"+created.ID+".json")
	if err := os.Remove(ckptFile); err != nil {
		b.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	start = time.Now()
	svc2, err := service.New(st2, service.Options{})
	if err != nil {
		b.Fatal(err)
	}
	resumed := benchWaitCampaign(b, svc2, created.ID)
	journal = time.Since(start)
	if resumed.SkippedTests != spec.Tests {
		b.Fatalf("journal resume re-ran tests: %+v", resumed)
	}
	resumedBuckets, err := svc2.Buckets(created.ID)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(freshBuckets, resumedBuckets) {
		b.Fatalf("journal resume diverged:\n%+v\nvs fresh\n%+v", resumedBuckets, freshBuckets)
	}
	if err := svc2.Close(context.Background()); err != nil {
		b.Fatal(err)
	}

	// Checkpoint-resume leg: the rebuild above rewrote the checkpoint, so
	// a restart serves the buckets with zero jobs submitted.
	st3, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	start = time.Now()
	svc3, err := service.New(st3, service.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ckptBuckets, err := svc3.Buckets(created.ID)
	if err != nil {
		b.Fatal(err)
	}
	ckpt = time.Since(start)
	if !reflect.DeepEqual(freshBuckets, ckptBuckets) {
		b.Fatalf("checkpoint resume diverged:\n%+v\nvs fresh\n%+v", ckptBuckets, freshBuckets)
	}
	if m := svc3.Metrics(); m.JobsSubmitted != 0 {
		b.Fatalf("checkpoint resume submitted jobs: %+v", m)
	}
	if err := svc3.Close(context.Background()); err != nil {
		b.Fatal(err)
	}
	return fresh, journal, ckpt
}

// BenchmarkMemoWarmCampaign measures the persistent memo store's
// cross-campaign payoff: the same campaign spec run twice over one daemon
// home (-memo-dir plus store), with a daemon restart in between. The warm
// leg's campaign has a fresh ID, so the journal skips nothing — the full
// fuzz/classify/reduce/bucket pipeline re-runs — but every execution it
// asks for is served by the memo tier instead of the toolchain. Reports
// cold-time/warm-time as "speedup" and the warm leg's
// MemoHits/(MemoHits+MemoMisses) as "warm-hit-frac"; bench-compare guards
// both (a warm repeat must stay ≥3x faster than cold with ≥0.7 of its
// executions memo-served). Buckets must be identical across the legs —
// memo temperature only ever moves time. Bisect jobs are deliberately not
// part of the workload: bisection probes already share compiles in-process
// (PR 8), so they dilute the execution fraction the memo tier targets;
// the memo × bisect identity is pinned by TestMemoTemperatureIdentity.
func BenchmarkMemoWarmCampaign(b *testing.B) {
	spec := service.CampaignSpec{Tests: 300, CapPerSignature: 1}
	if testing.Short() {
		spec.Tests = 120
	}
	var speedup, hitFrac float64
	for i := 0; i < b.N; i++ {
		var coldBest, warmBest time.Duration
		for rep := 0; rep < 3; rep++ { // best-of-three against CPU-contention spikes
			cold, warm, frac := memoLegs(b, spec)
			if rep == 0 || cold < coldBest {
				coldBest = cold
			}
			if rep == 0 || warm < warmBest {
				warmBest = warm
			}
			hitFrac = frac // deterministic executions: identical every rep
		}
		speedup = coldBest.Seconds() / warmBest.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(hitFrac, "warm-hit-frac")
}

// memoLegs runs the same campaign spec twice over one daemon home — cold
// (empty memo, empty store) then warm (daemon restarted over both) —
// returning the wall times and the warm leg's memo hit fraction. Sharing
// the store dir is the realistic repeat shape: a long-lived daemon keeps
// its blob store, so the warm campaign's content-addressed writes dedup
// against existing blobs the same way its executions dedup against the
// memo. The warm campaign still drives the entire pipeline — a fresh
// campaign ID means nothing is journal-skipped.
func memoLegs(b *testing.B, spec service.CampaignSpec) (cold, warm time.Duration, hitFrac float64) {
	b.Helper()
	dir := b.TempDir()
	memoDir := filepath.Join(dir, "memo")
	storeDir := filepath.Join(dir, "store")

	leg := func() (time.Duration, []service.BucketSet, service.Metrics) {
		runtime.GC() // level the heap left by earlier benchmarks across legs
		st, err := store.Open(storeDir)
		if err != nil {
			b.Fatal(err)
		}
		svc, err := service.New(st, service.Options{MemoDir: memoDir, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		created, err := svc.CreateCampaign(spec)
		if err != nil {
			b.Fatal(err)
		}
		benchWaitCampaign(b, svc, created.ID)
		elapsed := time.Since(start)
		buckets, err := svc.Buckets(created.ID)
		if err != nil {
			b.Fatal(err)
		}
		m := svc.Metrics()
		if err := svc.Close(context.Background()); err != nil {
			b.Fatal(err)
		}
		return elapsed, buckets, m
	}

	cold, coldBuckets, coldM := leg()
	if coldM.Runner.MemoMisses == 0 {
		b.Fatal("cold leg never consulted the memo store")
	}
	warm, warmBuckets, warmM := leg()
	if !reflect.DeepEqual(memoNormalize(coldBuckets), memoNormalize(warmBuckets)) {
		b.Fatalf("warm-memo buckets diverged from cold:\n%+v\nvs\n%+v", warmBuckets, coldBuckets)
	}
	hits, misses := warmM.Runner.MemoHits, warmM.Runner.MemoMisses
	if hits == 0 {
		b.Fatal("warm leg never hit the memo store")
	}
	return cold, warm, float64(hits) / float64(hits+misses)
}

// memoNormalize strips the campaign-scoped naming from bucket sets — the
// campaign ID, its prefix on case paths, and the report hashes derived
// from those paths — so two runs of the same spec compare on substance:
// targets, signatures, residual type sets, sequence lengths, deltas.
func memoNormalize(sets []service.BucketSet) []service.BucketSet {
	out := make([]service.BucketSet, len(sets))
	for i, s := range sets {
		s.Campaign = ""
		buckets := make([]service.Bucket, len(s.Buckets))
		for j, bkt := range s.Buckets {
			if k := strings.IndexByte(bkt.Case, '/'); k >= 0 {
				bkt.Case = bkt.Case[k+1:]
			}
			bkt.ReportHash = ""
			buckets[j] = bkt
		}
		s.Buckets = buckets
		out[i] = s
	}
	return out
}

// --- substrate performance benchmarks ---------------------------------------

// BenchmarkFuzzOneVariant measures one full spirv-fuzz run on a corpus
// reference (generation only).
func BenchmarkFuzzOneVariant(b *testing.B) {
	item := corpus.References()[3]
	donors := corpus.Donors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: int64(i), Donors: donors, EnableRecommendations: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderLoop measures reference interpretation of the loop shader
// over an 8×8 grid.
func BenchmarkRenderLoop(b *testing.B) {
	m := testmod.Loop()
	in := interp.Inputs{W: 8, H: 8}
	for i := 0; i < b.N; i++ {
		if _, err := interp.Render(m, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateVariant measures validation of a fuzzed variant.
func BenchmarkValidateVariant(b *testing.B) {
	item := corpus.References()[5]
	res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: 1, Donors: corpus.Donors(), EnableRecommendations: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := validate.Module(res.Variant); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryRoundTrip measures binary encode+decode of a variant.
func BenchmarkBinaryRoundTrip(b *testing.B) {
	m := testmod.Matrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spirv.DecodeBytes(m.EncodeBytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTargetCompile measures one simulated target compile (pipeline +
// defect predicates).
func BenchmarkTargetCompile(b *testing.B) {
	m := testmod.Caller()
	tg := target.ByName("Mesa")
	for i := 0; i < b.N; i++ {
		if _, crash := tg.Compile(m); crash != nil {
			b.Fatal(crash)
		}
	}
}

// BenchmarkAblationSplitBlockIndependence quantifies the Section 2.3
// independence principle with the paper's own example: a bug needs a block
// split before instruction t but not the earlier split before s. With
// id-anchored SplitBlock the reducer drops the unnecessary split; with the
// flawed (block, offset) parameterisation the second split names the block
// the first created, so both must be kept.
func BenchmarkAblationSplitBlockIndependence(b *testing.B) {
	build := func() (*spirv.Module, spirv.ID, spirv.ID) {
		bld := spirv.NewBuilder()
		s := bld.BeginFragmentShell()
		m := bld.Mod
		one := m.EnsureConstantFloat(0.125)
		c := bld.Emit(spirv.OpLoad, s.Vec2, s.Coord)
		x := bld.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
		cur := x
		var ids []spirv.ID
		for i := 0; i < 6; i++ {
			cur = bld.Emit(spirv.OpFAdd, s.Float, cur, one)
			ids = append(ids, cur)
		}
		col := bld.Emit(spirv.OpCompositeConstruct, s.Vec4, cur, cur, cur, one)
		bld.Store(s.Color, col)
		bld.FinishFragmentShell(s)
		return m, ids[1], ids[3] // s and t, with instructions between them
	}
	in := interp.Inputs{W: 2, H: 2}
	var keptFine, keptFlawed int
	for i := 0; i < b.N; i++ {
		// The "bug": some block starts with instruction t.
		mFine, _, tID := build()
		bugFine := func(m *spirv.Module) bool {
			for _, fn := range m.Functions {
				for _, blk := range fn.Blocks {
					if len(blk.Body) > 0 && blk.Body[0].Result == tID {
						return true
					}
				}
			}
			return false
		}
		sIDfine := tID - 2
		seqFine := []fuzz.Transformation{
			&fuzz.SplitBlock{Anchor: sIDfine, Fresh: mFine.Bound},
			&fuzz.SplitBlock{Anchor: tID, Fresh: mFine.Bound + 1},
		}
		kept, _ := core.Reduce(len(seqFine), func(keep []int) bool {
			ctx, _ := fuzz.ReplaySubsequenceContext(mFine, in, seqFine, keep)
			return bugFine(ctx.Mod)
		})
		keptFine = len(kept)

		mFlawed, _, tID2 := build()
		entry := mFlawed.EntryPointFunction().Entry().Label
		// Offsets: t sits at body offset 5 (load, extract, 4 adds before it).
		seqFlawed := []fuzz.Transformation{
			&fuzz.SplitBlockAtOffset{Block: entry, Offset: 3, Fresh: mFlawed.Bound},
			&fuzz.SplitBlockAtOffset{Block: mFlawed.Bound, Offset: 2, Fresh: mFlawed.Bound + 1},
		}
		bugFlawed := func(m *spirv.Module) bool {
			for _, fn := range m.Functions {
				for _, blk := range fn.Blocks {
					if len(blk.Body) > 0 && blk.Body[0].Result == tID2 {
						return true
					}
				}
			}
			return false
		}
		kept2, _ := core.Reduce(len(seqFlawed), func(keep []int) bool {
			ctx, _ := fuzz.ReplaySubsequenceContext(mFlawed, in, seqFlawed, keep)
			return bugFlawed(ctx.Mod)
		})
		keptFlawed = len(kept2)
	}
	b.ReportMetric(float64(keptFine), "kept-id-anchored")
	b.ReportMetric(float64(keptFlawed), "kept-offset-anchored")
	if keptFine != 1 || keptFlawed != 2 {
		b.Fatalf("ablation shape violated: fine=%d flawed=%d (want 1 and 2)", keptFine, keptFlawed)
	}
}

// BenchmarkInterpVM measures the compile-once register VM against the
// tree-walking reference evaluator on the reference corpus: every module is
// rendered on a 48x48 grid by both engines, and the wall-clock ratio is
// reported as "speedup" (shape target: >= 3x). The VM leg pays its plan
// compilation inside the timed region — one Compile per module, amortized
// over 2304 pixels, which is exactly the engine's usage pattern — and both
// legs must produce byte-identical images.
func BenchmarkInterpVM(b *testing.B) {
	refs := corpus.References()
	inputs := make([]interp.Inputs, len(refs))
	for i, item := range refs {
		in := item.Inputs
		in.W, in.H = 48, 48
		inputs[i] = in
	}

	var speedup float64
	for i := 0; i < b.N; i++ {
		// Best of two runs per leg so a CPU-contention spike during either
		// leg does not distort the ratio.
		var treeTime, vmTime time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			treeImgs := make([]*interp.Image, len(refs))
			for j, item := range refs {
				img, err := interp.RenderTree(item.Mod, inputs[j])
				if err != nil {
					b.Fatalf("%s: %v", item.Name, err)
				}
				treeImgs[j] = img
			}
			tt := time.Since(start)

			start = time.Now()
			vmImgs := make([]*interp.Image, len(refs))
			for j, item := range refs {
				prog, err := interp.Compile(item.Mod)
				if err != nil {
					b.Fatalf("%s: %v", item.Name, err)
				}
				img, err := prog.Render(inputs[j])
				if err != nil {
					b.Fatalf("%s: %v", item.Name, err)
				}
				vmImgs[j] = img
			}
			vt := time.Since(start)

			for j := range refs {
				if !treeImgs[j].Equal(vmImgs[j]) {
					b.Fatalf("%s: VM image differs from tree walker", refs[j].Name)
				}
			}
			if rep == 0 || tt < treeTime {
				treeTime = tt
			}
			if rep == 0 || vt < vmTime {
				vmTime = vt
			}
		}
		speedup = treeTime.Seconds() / vmTime.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(len(refs)), "modules")
}

// BenchmarkInterpVMLanes measures warp-style lane execution against the
// scalar register VM on the two control-flow extremes, at lane widths 4, 8
// and 16 on a 64x64 grid:
//
//   - uniform: a counted loop of coordinate-dependent float arithmetic
//     (testmod.LoopAccum) whose control flow is identical for every pixel —
//     the divergence-light shape lane mode accelerates most (shape target:
//     >= 2x at 8 lanes);
//   - divergent: a branch on pixel-column parity (testmod.ParityStripes)
//     that splits every lane group, forcing half the pixels back to the
//     scalar VM — the worst case, pinned here so the fallback overhead is
//     guarded too.
//
// Each sub-benchmark reports scalar-time/lane-time as "speedup" and requires
// byte-identical images. Both legs run single-worker so the ratio isolates
// lane amortization from row parallelism.
func BenchmarkInterpVMLanes(b *testing.B) {
	shaders := []struct {
		name string
		mod  *spirv.Module
	}{
		{"uniform", testmod.LoopAccum(64)},
		{"divergent", testmod.ParityStripes(64)},
	}
	in := interp.Inputs{W: 64, H: 64}
	for _, sh := range shaders {
		prog, err := interp.Compile(sh.mod)
		if err != nil {
			b.Fatalf("%s: %v", sh.name, err)
		}
		for _, lanes := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/l%d", sh.name, lanes), func(b *testing.B) {
				var speedup float64
				for i := 0; i < b.N; i++ {
					// Best of five runs per leg against CPU-contention
					// spikes: the ratio divides two noisy measurements, so
					// each side must reach its own uncontended minimum.
					var scalarTime, laneTime time.Duration
					for rep := 0; rep < 5; rep++ {
						// The scalar leg allocates per-pixel state; flush its
						// garbage before each timed leg so neither engine
						// pays the other's collection inside its window.
						runtime.GC()
						start := time.Now()
						sImg, err := prog.RenderParallel(in, 1)
						if err != nil {
							b.Fatal(err)
						}
						st := time.Since(start)

						runtime.GC()
						start = time.Now()
						lImg, _, err := prog.RenderParallelLanes(in, 1, lanes)
						if err != nil {
							b.Fatal(err)
						}
						lt := time.Since(start)

						if !sImg.Equal(lImg) {
							b.Fatalf("%s: lane image differs from scalar VM", sh.name)
						}
						if rep == 0 || st < scalarTime {
							scalarTime = st
						}
						if rep == 0 || lt < laneTime {
							laneTime = lt
						}
					}
					speedup = scalarTime.Seconds() / laneTime.Seconds()
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

// BenchmarkBisectCampaign measures the second dedup signal end to end: every
// bug outcome of a fuzzing campaign is bisected against its target's release
// history, on a cold engine versus the same engine cache-warm. Bisection
// rides the campaign's compile sharing — a probe either crashes before
// compiling or hits a (module fingerprint, mutation fingerprint) compile key
// another release already populated — so even the cold pass must satisfy the
// almost-for-free claim: cache-hit fraction >= 0.5, far fewer compiles than
// probes. Verdicts must be identical across both passes; reported metrics:
// warm-over-cold speedup, the guarded cold hit fraction, probes per case, and
// the distinct (target, first-bad) bucket count the dedup signal yields.
func BenchmarkBisectCampaign(b *testing.B) {
	refs := corpus.References()
	targets := target.All()
	donors := corpus.Donors()
	tests := 40
	if testing.Short() {
		tests = 25
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	res, err := harness.CampaignEngine(runner.New(workers), harness.ToolSpirvFuzz, tests, 2, refs, targets, donors)
	if err != nil {
		b.Fatal(err)
	}
	var cases []bisect.Case
	perSig := map[string]int{}
	for _, o := range res.BugOutcomes {
		key := o.Target + "|" + o.Signature
		if perSig[key] >= 2 {
			continue
		}
		perSig[key]++
		cases = append(cases, bisect.Case{
			Target:         o.Target,
			Signature:      o.Signature,
			Original:       o.Original,
			OriginalInputs: o.Inputs,
			Variant:        o.Variant,
			Inputs:         o.VariantInputs,
		})
	}
	if len(cases) < 5 {
		b.Fatalf("campaign produced only %d bisectable cases", len(cases))
	}

	bisectAll := func(be *bisect.Engine) ([]bisect.Result, time.Duration) {
		out := make([]bisect.Result, len(cases))
		start := time.Now()
		for j, c := range cases {
			r, err := be.Bisect(c)
			if err != nil {
				b.Fatal(err)
			}
			out[j] = r
		}
		return out, time.Since(start)
	}

	var speedup, coldHit, perCase float64
	buckets := map[string]bool{}
	for i := 0; i < b.N; i++ {
		var coldTime, warmTime time.Duration
		for rep := 0; rep < 3; rep++ { // best-of-three against CPU-contention spikes
			be := bisect.New(runner.New(workers))
			coldRes, ct := bisectAll(be)
			cold := be.Stats()
			warmRes, wt := bisectAll(be) // second pass: compile caches warm

			// Result equality across temperatures is the determinism contract:
			// CacheHits is deliberately self-relative to each bisection, so the
			// warm pass must reproduce the cold verdicts bitwise.
			if !reflect.DeepEqual(coldRes, warmRes) {
				b.Fatalf("warm verdicts diverged from cold:\n%+v\nvs\n%+v", warmRes, coldRes)
			}
			if cold.HitFraction() < 0.5 {
				b.Fatalf("cold cache-hit fraction %.2f, want >= 0.5 (%+v)", cold.HitFraction(), cold)
			}
			if rep == 0 || ct < coldTime {
				coldTime = ct
			}
			if rep == 0 || wt < warmTime {
				warmTime = wt
			}
			coldHit = cold.HitFraction()
			perCase = float64(cold.Queries) / float64(cold.Bisections)
			for _, r := range coldRes {
				buckets[r.Target+"@"+r.FirstBad] = true
			}
		}
		speedup = coldTime.Seconds() / warmTime.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(coldHit, "hit-frac")
	b.ReportMetric(perCase, "probes/case")
	b.ReportMetric(float64(len(cases)), "cases")
	b.ReportMetric(float64(len(buckets)), "bisect-buckets")
}

// clusterCampaignLeg runs one simulated cluster — a coordinator over
// loopback HTTP plus n single-threaded worker nodes — through spec and
// returns the campaign wall-clock, the marshaled bucket set, and the
// coordinator's merged metrics.
func clusterCampaignLeg(b *testing.B, nodes int, spec service.CampaignSpec) (time.Duration, string, cluster.Metrics) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	co, err := cluster.NewCoordinator(st, cluster.Options{ShardTests: 4, ShardCases: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer co.Close()
	sim, err := cluster.StartSim(co, nodes, b.TempDir(), 1)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Stop()

	start := time.Now()
	created, err := co.CreateCampaign(spec)
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		cst, ok := co.Campaign(created.ID)
		if !ok {
			b.Fatalf("campaign %s disappeared", created.ID)
		}
		if cst.State == service.StateDone {
			break
		}
		if cst.State == service.StateFailed {
			b.Fatalf("campaign failed: %s", cst.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("campaign stuck in %s", cst.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	sets, err := co.Buckets(created.ID)
	if err != nil {
		b.Fatal(err)
	}
	return elapsed, fmt.Sprintf("%+v", sets), co.Metrics()
}

// BenchmarkClusterCampaign measures the distributed speedup: the same
// campaign on a 1-node and a 3-node simulated cluster (every worker node
// runs a single-threaded engine, so added nodes are the only parallelism).
//
// The simulated toolchains answer an interestingness query in microseconds,
// which makes a campaign CPU-bound and erases the thing distribution is for
// — in real transformation-based compiler testing a query shells out to an
// actual compiler and costs milliseconds of latency. ReduceSlowdownMS
// restores that per-query latency (pacing only; results are bitwise
// unaffected), so shard wall-clock is latency-dominated exactly like the
// deployments the coordinator exists for, and the measured speedup reflects
// shard overlap across nodes rather than the host's core count.
//
// Shape targets: the two bucket sets are identical (merge soundness), the
// 3-node run is >= 2x faster, and the hash-negotiated blob sync moves at
// most a fifth of the referenced bytes (dedup fraction >= 0.8).
func BenchmarkClusterCampaign(b *testing.B) {
	spec := service.CampaignSpec{Tests: 36, ReduceSlowdownMS: 10}
	if testing.Short() {
		spec.Tests = 32
	}
	var speedup, dedup float64
	for i := 0; i < b.N; i++ {
		var t1, t3 time.Duration
		var buckets1, buckets3 string
		var m3 cluster.Metrics
		for rep := 0; rep < 2; rep++ { // best-of-two against CPU-contention spikes
			d1, bk1, _ := clusterCampaignLeg(b, 1, spec)
			d3, bk3, m := clusterCampaignLeg(b, 3, spec)
			if rep == 0 || d1 < t1 {
				t1, buckets1 = d1, bk1
			}
			if rep == 0 || d3 < t3 {
				t3, buckets3, m3 = d3, bk3, m
			}
		}
		if buckets1 != buckets3 {
			b.Fatalf("1-node and 3-node bucket sets differ:\n%s\nvs\n%s", buckets1, buckets3)
		}
		speedup = t1.Seconds() / t3.Seconds()
		dedup = m3.Cluster.BlobDedupFraction
		if speedup < 2 {
			b.Fatalf("3-node speedup %.2fx, want >= 2x (1 node %v, 3 nodes %v)", speedup, t1, t3)
		}
		if dedup < 0.8 {
			b.Fatalf("blob-sync dedup %.2f, want >= 0.8: %+v", dedup, m3.Cluster.Sync)
		}
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(dedup, "dedup-frac")
}

// clusterPipelineLeg runs one simulated cluster with 20ms of injected wire
// latency on every worker-protocol request — the latency-bound regime the
// pipelined transport exists for — and returns the campaign wall-clock, the
// marshaled buckets, the coordinator metrics, and the process-wide wire
// traffic the leg produced. pipelined toggles the whole transport stack at
// once: shard prefetch, gzip negotiation, batched sync, adaptive shards.
func clusterPipelineLeg(b testing.TB, nodes int, pipelined bool, spec service.CampaignSpec) (time.Duration, string, cluster.Metrics, cluster.WireStats) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	co, err := cluster.NewCoordinator(st, cluster.Options{ShardTests: 4, ShardCases: 1, AdaptiveShards: pipelined})
	if err != nil {
		b.Fatal(err)
	}
	defer co.Close()
	wireBefore := cluster.SnapshotWire()
	sim, err := cluster.StartSimCfg(co, cluster.SimConfig{
		Nodes: nodes, Dir: b.TempDir(), WorkersPer: 1,
		Latency: 20 * time.Millisecond,
		Worker: func(w *cluster.WorkerOptions) {
			w.Prefetch, w.Compress, w.Batch = pipelined, pipelined, pipelined
			// Cap the idle backoff (same for both protocols) so phase
			// transitions measure the transport, not the poll ladder.
			w.Poll, w.PollMax = 5*time.Millisecond, 40*time.Millisecond
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Stop()

	start := time.Now()
	created, err := co.CreateCampaign(spec)
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		cst, ok := co.Campaign(created.ID)
		if !ok {
			b.Fatalf("campaign %s disappeared", created.ID)
		}
		if cst.State == service.StateDone {
			break
		}
		if cst.State == service.StateFailed {
			b.Fatalf("campaign failed: %s", cst.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("campaign stuck in %s", cst.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	sets, err := co.Buckets(created.ID)
	if err != nil {
		b.Fatal(err)
	}
	return elapsed, fmt.Sprintf("%+v", sets), co.Metrics(), cluster.SnapshotWire().Sub(wireBefore)
}

// BenchmarkClusterPipeline measures what the pipelined transport buys on
// latency-bound shards: the same campaign over 3-node clusters speaking the
// serial per-endpoint protocol vs the pipelined one (prefetch + batched,
// compressed sync + adaptive shards), with every worker-protocol round trip
// paying 20ms of injected latency. A pipelined 1-node leg is timed alongside
// to expose the node-scaling of the pipelined loop itself.
//
// Shape targets: all bucket sets bitwise-identical, the pipelined 3-node run
// >= 1.5x faster than the serial 3-node run, and its bytes on the wire at
// most half the serial protocol's.
func BenchmarkClusterPipeline(b *testing.B) {
	spec := service.CampaignSpec{Tests: 24}
	if testing.Short() {
		spec.Tests = 16
	}
	var speedup, wireFrac, nodeSpeedup float64
	for i := 0; i < b.N; i++ {
		var ts, tp, t1 time.Duration
		var bks, bkp, bk1 string
		var mp cluster.Metrics
		var ws, wp cluster.WireStats
		for rep := 0; rep < 2; rep++ { // best-of-two against CPU-contention spikes
			ds, s, _, w := clusterPipelineLeg(b, 3, false, spec)
			dp, p, m, pw := clusterPipelineLeg(b, 3, true, spec)
			d1, one, _, _ := clusterPipelineLeg(b, 1, true, spec)
			if rep == 0 || ds < ts {
				ts, bks, ws = ds, s, w
			}
			if rep == 0 || dp < tp {
				tp, bkp, mp, wp = dp, p, m, pw
			}
			if rep == 0 || d1 < t1 {
				t1, bk1 = d1, one
			}
		}
		if bks != bkp || bks != bk1 {
			b.Fatalf("bucket sets differ across transport configurations:\nserial   %s\npipelined %s\n1-node   %s", bks, bkp, bk1)
		}
		speedup = ts.Seconds() / tp.Seconds()
		wireFrac = float64(wp.WireBytesOut+wp.WireBytesIn) / float64(ws.WireBytesOut+ws.WireBytesIn)
		nodeSpeedup = t1.Seconds() / tp.Seconds()
		if speedup < 1.5 {
			b.Fatalf("pipelined speedup %.2fx, want >= 1.5x (serial %v, pipelined %v)", speedup, ts, tp)
		}
		if wireFrac > 0.5 {
			b.Fatalf("pipelined wire bytes %.2fx of serial, want <= 0.5x (serial %d, pipelined %d)",
				wireFrac, ws.WireBytesOut+ws.WireBytesIn, wp.WireBytesOut+wp.WireBytesIn)
		}
		if mp.Cluster.Sync.Prefetched == 0 {
			b.Fatalf("pipelined leg reported no prefetched shards: %+v", mp.Cluster.Sync)
		}
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(wireFrac, "wire-frac")
	b.ReportMetric(nodeSpeedup, "node-speedup")
}
