// Package spirvfuzz is a from-scratch Go reproduction of "Test-Case
// Reduction and Deduplication Almost for Free with Transformation-Based
// Compiler Testing" (PLDI 2021).
//
// The root package is documentation-only; the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for measured results).
package spirvfuzz
