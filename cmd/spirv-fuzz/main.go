// spirv-fuzz applies randomized semantics-preserving transformations to a
// SPIR-V module (Section 3.2):
//
//	spirv-fuzz -in shader.spvasm -inputs inputs.json -seed 42 \
//	    -o variant.spvasm -transformations seq.json [-simple] [-corpus-donors]
//
// The input module may be binary (.spv) or textual assembly. The emitted
// transformation sequence is self-contained: replaying it with spirv-reduce
// needs only the original module and inputs.
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/spirv/validate"
)

func main() {
	in := flag.String("in", "", "input module (.spv binary or .spvasm text)")
	inputsPath := flag.String("inputs", "", "JSON inputs file (optional)")
	out := flag.String("o", "variant.spvasm", "output variant module")
	seqOut := flag.String("transformations", "transformations.json", "output transformation sequence")
	seed := flag.Int64("seed", 0, "random seed controlling all fuzzing decisions")
	simple := flag.Bool("simple", false, "disable the recommendations strategy (spirv-fuzz-simple)")
	maxT := flag.Int("max-transformations", 2000, "transformation cap")
	useCorpusDonors := flag.Bool("corpus-donors", true, "use the built-in donor corpus for AddFunction")
	check := flag.Bool("validate", true, "validate the variant before writing it")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "spirv-fuzz: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	mod, err := cli.LoadModule(*in)
	fatal(err)
	inputs, err := cli.LoadInputs(*inputsPath, *in)
	fatal(err)
	var donors []*spirv.Module
	if *useCorpusDonors {
		donors = corpus.Donors()
	}
	res, err := fuzz.Fuzz(mod, inputs, fuzz.Options{
		Seed:                  *seed,
		Donors:                donors,
		EnableRecommendations: !*simple,
		MaxTransformations:    *maxT,
	})
	fatal(err)
	if *check {
		fatal(validate.Module(res.Variant))
	}
	fatal(asm.SaveModule(res.Variant, *out))
	data, err := fuzz.MarshalSequence(res.Transformations)
	fatal(err)
	fatal(os.WriteFile(*seqOut, data, 0o644))
	fmt.Printf("spirv-fuzz: applied %d transformations over %d passes; %d -> %d instructions\n",
		len(res.Transformations), len(res.PassesRun), mod.InstructionCount(), res.Variant.InstructionCount())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-fuzz:", err)
		os.Exit(1)
	}
}
