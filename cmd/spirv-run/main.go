// spirv-run executes a SPIR-V module on the reference interpreter and
// prints the rendered image:
//
//	spirv-run -in shader.spvasm [-inputs inputs.json] [-target Mesa] [-ascii]
//
// With -target, the module is run through the named simulated target's
// compiler first, so crashes and miscompilations can be observed directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/target"
)

func main() {
	in := flag.String("in", "", "input module")
	inputsPath := flag.String("inputs", "", "JSON inputs file (optional)")
	targetName := flag.String("target", "", "run via a simulated target instead of the reference interpreter")
	ascii := flag.Bool("ascii", true, "print the image as ASCII art")
	compare := flag.String("compare", "", "second module: render both and exit 4 if the images differ (regression test)")
	workers := flag.Int("workers", 0, "execution-engine worker pool size; 0 means GOMAXPROCS")
	interpEngine := flag.String("interp", "vm", "interpreter engine: vm (compile-once register VM) or tree (tree-walking reference; results are identical)")
	lanes := flag.String("lanes", "0", `pixels per VM instruction, warp-style: a lane count (0 = scalar, max 16) or "auto" to probe each render (results are identical either way)`)
	flag.Parse()
	switch *interpEngine {
	case "vm":
		interp.SetTreeWalker(false)
	case "tree":
		interp.SetTreeWalker(true)
	default:
		fatal(fmt.Errorf("unknown -interp engine %q (want vm or tree)", *interpEngine))
	}
	fatal(interp.SetLanesFlag(*lanes))
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spirv-run: -in is required")
		os.Exit(2)
	}
	m, err := cli.LoadModule(*in)
	fatal(err)
	inputs, err := cli.LoadInputs(*inputsPath, *in)
	fatal(err)
	eng := runner.New(*workers)
	var img *interp.Image
	if *targetName != "" {
		tg := target.ByName(*targetName)
		if tg == nil {
			fatal(fmt.Errorf("unknown target %q", *targetName))
		}
		var crash *target.Crash
		img, crash = eng.Run(tg, m, inputs)
		if crash != nil {
			fmt.Printf("spirv-run: %s crashed: %s\n", tg.Name, crash.Signature)
			os.Exit(3)
		}
		if img == nil {
			fmt.Printf("spirv-run: %s compiled the module successfully (target does not render)\n", tg.Name)
			return
		}
	} else {
		img, err = interp.Render(m, inputs)
		fatal(err)
	}
	if *compare != "" {
		other, err := cli.LoadModule(*compare)
		fatal(err)
		var otherImg *interp.Image
		if *targetName != "" {
			tg := target.ByName(*targetName)
			var crash *target.Crash
			otherImg, crash = eng.Run(tg, other, inputs)
			if crash != nil {
				fmt.Printf("spirv-run: %s crashed on %s: %s\n", *targetName, *compare, crash.Signature)
				os.Exit(3)
			}
		} else {
			otherImg, err = interp.Render(other, inputs)
			fatal(err)
		}
		if !img.Equal(otherImg) {
			fmt.Printf("spirv-run: REGRESSION: images differ in %d pixels (%s vs %s)\n",
				img.DiffCount(otherImg), *in, *compare)
			os.Exit(4)
		}
		fmt.Printf("spirv-run: images identical (%s vs %s), hash %s\n", *in, *compare, img.Hash())
		return
	}
	fmt.Printf("spirv-run: %dx%d image, hash %s\n", img.W, img.H, img.Hash())
	if *ascii {
		fmt.Print(img.ASCII())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-run:", err)
		os.Exit(1)
	}
}
