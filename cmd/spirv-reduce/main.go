// spirv-reduce minimizes a bug-inducing transformation sequence with delta
// debugging (Section 3.4):
//
//	spirv-reduce -in original.spvasm -inputs inputs.json \
//	    -transformations seq.json -target SwiftShader [-signature SIG] \
//	    -o reduced.spvasm -reduced-transformations reduced.json
//
// When -signature is omitted, the tool first runs the full variant on the
// target and uses whatever bug signature appears (crash signature or
// "miscompilation").
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/target"
)

func main() {
	in := flag.String("in", "", "original module")
	inputsPath := flag.String("inputs", "", "JSON inputs file (optional)")
	seqPath := flag.String("transformations", "", "bug-inducing transformation sequence (JSON)")
	targetName := flag.String("target", "", "target name (see gfauto -list-targets)")
	signature := flag.String("signature", "", "bug signature; auto-detected when empty")
	out := flag.String("o", "reduced.spvasm", "output reduced variant")
	seqOut := flag.String("reduced-transformations", "reduced.json", "output minimized sequence")
	reportDir := flag.String("report-dir", "", "also export a full bug-report bundle (Section 2.1) to this directory")
	workers := flag.Int("workers", 0, "concurrent ddmin queries; 0 means GOMAXPROCS (results are identical for any value)")
	replayMB := flag.Int64("replay-cache-mb", 64, "prefix-snapshot replay cache budget in MiB; 0 disables incremental replay (results are identical either way)")
	flag.Parse()

	if *in == "" || *seqPath == "" || *targetName == "" {
		fmt.Fprintln(os.Stderr, "spirv-reduce: -in, -transformations and -target are required")
		flag.Usage()
		os.Exit(2)
	}
	tg := target.ByName(*targetName)
	if tg == nil {
		fatal(fmt.Errorf("unknown target %q", *targetName))
	}
	mod, err := cli.LoadModule(*in)
	fatal(err)
	inputs, err := cli.LoadInputs(*inputsPath, *in)
	fatal(err)
	data, err := os.ReadFile(*seqPath)
	fatal(err)
	seq, err := fuzz.UnmarshalSequence(data)
	fatal(err)

	eng := runner.New(*workers)
	sig := *signature
	if sig == "" {
		variant, _ := fuzz.Replay(mod, inputs, seq)
		origImg, origCrash := eng.Run(tg, mod, inputs)
		if origCrash != nil {
			fatal(fmt.Errorf("original already crashes on %s: %s", tg.Name, origCrash.Signature))
		}
		img, crash := eng.Run(tg, variant, inputs)
		switch {
		case crash != nil:
			sig = crash.Signature
		case tg.CanRender && img != nil && !img.Equal(origImg):
			sig = target.MiscompilationSignature
		default:
			fatal(fmt.Errorf("variant triggers no bug on %s; nothing to reduce", tg.Name))
		}
		fmt.Printf("spirv-reduce: detected signature %q\n", sig)
	}

	interesting := reduce.ForOutcomeOn(eng, tg, mod, inputs, sig)
	full, _ := fuzz.Replay(mod, inputs, seq)
	if !interesting(full, inputs) {
		fatal(fmt.Errorf("full sequence does not trigger signature %q on %s; check -signature", sig, tg.Name))
	}
	reng := replay.NewEngine(*replayMB << 20)
	res := reduce.ReduceParallelReplay(mod, inputs, seq, interesting, eng.Workers(), reng)
	fatal(asm.SaveModule(res.Variant, *out))
	outSeq, err := fuzz.MarshalSequence(res.Sequence)
	fatal(err)
	fatal(os.WriteFile(*seqOut, outSeq, 0o644))
	st := eng.Stats()
	fmt.Printf("spirv-reduce: %d -> %d transformations in %d queries; delta %d instructions\n",
		len(seq), len(res.Sequence), res.Queries, res.Delta)
	fmt.Printf("spirv-reduce: %d workers, %d target runs, %.0f%% cache hit rate\n",
		st.Workers, st.Misses, 100*st.HitRate())
	if rst := reng.Stats(); rst.Queries > 0 {
		fmt.Printf("spirv-reduce: replay cache: %.0f%% prefix hits, mean suffix %.1f of %.1f transformations (%.0f%% replay work saved), %d snapshots (%.1f MiB), %d evictions\n",
			100*rst.HitRate(), rst.MeanSuffix(), rst.MeanRequested(), 100*rst.SavedFraction(),
			rst.Snapshots, float64(rst.Bytes)/(1<<20), rst.Evictions)
	}
	if *reportDir != "" {
		o := &harness.Outcome{
			Tool: harness.ToolSpirvFuzz, Target: tg.Name, Reference: *in, Seed: 0,
			Signature: sig, Original: mod, Variant: res.Variant, Inputs: inputs,
			Transformations: res.Sequence,
		}
		fatal(harness.ExportBugReport(*reportDir, o, res))
		fmt.Printf("spirv-reduce: bug-report bundle written to %s\n", *reportDir)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-reduce:", err)
		os.Exit(1)
	}
}
