// spirv-dis disassembles a binary SPIR-V module to a textual listing:
//
//	spirv-dis -in shader.spv [-o shader.spvasm]
//
// Without -o the listing goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/asm"
)

func main() {
	in := flag.String("in", "", "input binary module")
	out := flag.String("o", "", "output file (stdout when empty)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spirv-dis: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	fatal(err)
	m, err := spirv.DecodeBytes(data)
	fatal(err)
	text := asm.Disassemble(m)
	if *out == "" {
		fmt.Print(text)
		return
	}
	fatal(os.WriteFile(*out, []byte(text), 0o644))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-dis:", err)
		os.Exit(1)
	}
}
