// spirv-val validates a SPIR-V module against the subset's rules (SSA
// dominance, typing, block ordering, ϕ coherence, structured control flow):
//
//	spirv-val -in shader.spvasm
//
// Exit status 0 means valid; 1 means invalid (the violation is printed).
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/cli"
	"spirvfuzz/internal/spirv/validate"
)

func main() {
	in := flag.String("in", "", "input module (.spv binary, text, or corpus:NAME)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spirv-val: -in is required")
		os.Exit(2)
	}
	m, err := cli.LoadModule(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-val:", err)
		os.Exit(2)
	}
	if err := validate.Module(m); err != nil {
		fmt.Fprintln(os.Stderr, "spirv-val:", err)
		os.Exit(1)
	}
	fmt.Printf("spirv-val: %d instructions, valid\n", m.InstructionCount())
}
