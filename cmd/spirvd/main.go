// spirvd is the long-running campaign daemon: it owns the full pipeline of
// the paper — fuzz → run → reduce → dedup — as a durable job system
// (internal/service) over a content-addressed store with a write-ahead
// journal (internal/store), and serves campaign state over HTTP/JSON.
//
//	spirvd -store /var/lib/spirvd -addr 127.0.0.1:8741
//
//	POST /campaigns        submit a campaign spec, returns its status
//	GET  /campaigns        list campaign statuses
//	GET  /campaigns/{id}   one campaign's status
//	GET  /buckets          recommended bug reports of finished campaigns
//	GET  /reports/{hash}   one reduced bug report (spirv-dedup-compatible)
//	POST /bisect           bisect a finished campaign's reduced cases over
//	                       their targets' release histories (second signal)
//	GET  /bisect           list bisection-job statuses
//	GET  /bisect/{id}      one bisection job's status
//	GET  /bisect/{id}/result  a finished job's verdicts and signal buckets
//	GET  /metrics          runner/replay/store/job/bisect counters
//
// Every pipeline step is journaled, so a daemon killed at any point — even
// SIGKILL mid-reduction — resumes from the store on restart and finishes
// with buckets bitwise-identical to an uninterrupted run. SIGTERM/SIGINT
// trigger a graceful drain: in-flight jobs finish, pending ones are left to
// the journal.
//
// -role selects the deployment shape (internal/cluster):
//
//	standalone   (default) the single-process daemon described above
//	coordinator  serve the same campaign API, but shard campaigns into
//	             jobs executed by worker nodes; -nodes N additionally
//	             spawns N in-process workers for a single-machine cluster
//	worker       join the coordinator at -join, pull shards, sync blobs
//
// A coordinator serves the identical campaign endpoints, so the client
// subcommand and test harnesses work unchanged against either role, and
// sharded campaigns produce buckets bitwise-identical to standalone runs.
//
// The "client" subcommand (spirvd client <verb>) is a thin JSON client for
// scripting and the end-to-end tests; see client.go.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"spirvfuzz/internal/cluster"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "client" {
		clientMain(os.Args[2:])
		return
	}
	serverMain(os.Args[1:])
}

func serverMain(args []string) {
	fs := flag.NewFlagSet("spirvd", flag.ExitOnError)
	role := fs.String("role", "standalone", "deployment role: standalone, coordinator, or worker")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port); unused by -role worker")
	storeDir := fs.String("store", "", "store directory (required); created if missing")
	workers := fs.Int("workers", 0, "worker-pool size; 0 means GOMAXPROCS (results are identical for any value)")
	replayMB := fs.Int("replay-cache-mb", 64, "prefix-snapshot replay cache budget for reductions, in MiB")
	memoDir := fs.String("memo-dir", "", "persistent execution memo store directory; empty disables (results are identical either way)")
	memoMaxMB := fs.Int("memo-max-mb", 256, "memo store size budget in MiB before old segments are compacted or evicted")
	portFile := fs.String("portfile", "", "write the bound address to this file once listening (for test harnesses)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight jobs")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	interpEngine := fs.String("interp", "vm", "interpreter engine: vm (compile-once register VM) or tree (tree-walking reference; results are identical)")
	lanes := fs.String("lanes", "0", `pixels per VM instruction, warp-style: a lane count (0 = scalar, max 16) or "auto" to probe each render (results are identical either way)`)
	join := fs.String("join", "", "coordinator URL to join (required for -role worker)")
	node := fs.String("node", "", "worker node name (default host-pid)")
	nodes := fs.Int("nodes", 0, "coordinator only: spawn this many in-process worker nodes")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Second, "coordinator only: shard lease before an unreported shard is re-queued")
	shardTests := fs.Int("shard-tests", 4, "coordinator only: max tests per fuzz shard")
	shardCases := fs.Int("shard-cases", 2, "coordinator only: max cases per reduce shard")
	adaptiveShards := fs.Bool("adaptive-shards", true, "coordinator only: size shards from observed service-vs-sync time (bounded by -shard-tests/-shard-cases; results are identical either way)")
	syncFrac := fs.Float64("sync-frac", 0.2, "coordinator only: target fraction of shard wall time spent syncing when -adaptive-shards is on")
	prefetch := fs.Bool("prefetch", true, "worker: pipeline the transport by leasing and syncing the next shard during execution (results are identical either way)")
	compress := fs.Bool("compress", true, "worker: gzip-negotiate request/response bodies (results are identical either way)")
	batch := fs.Bool("batch", true, "worker: fold per-shard blob/memo/result chatter into multi-key /cluster/sync round trips; off speaks the per-endpoint legacy protocol (results are identical either way)")
	fs.Parse(args)
	switch *interpEngine {
	case "vm":
		interp.SetTreeWalker(false)
	case "tree":
		interp.SetTreeWalker(true)
	default:
		fmt.Fprintf(os.Stderr, "spirvd: unknown -interp engine %q (want vm or tree)\n", *interpEngine)
		os.Exit(2)
	}
	if err := interp.SetLanesFlag(*lanes); err != nil {
		fmt.Fprintf(os.Stderr, "spirvd: %v\n", err)
		os.Exit(2)
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "spirvd: -store is required")
		fs.Usage()
		os.Exit(2)
	}

	if *role == "worker" {
		workerMain(workerConfig{
			join: *join, node: *node, storeDir: *storeDir,
			workers: *workers, replayMB: *replayMB,
			memoDir: *memoDir, memoMaxMB: *memoMaxMB,
			prefetch: *prefetch, compress: *compress, batch: *batch,
		})
		return
	}

	st, err := store.Open(*storeDir)
	fatal(err)
	var handler http.Handler
	var shutdown func(context.Context)
	switch *role {
	case "standalone":
		svc, err := service.New(st, service.Options{
			Workers:      *workers,
			ReplayBudget: int64(*replayMB) << 20,
			MemoDir:      *memoDir,
			MemoMaxBytes: int64(*memoMaxMB) << 20,
		})
		fatal(err)
		handler = newMux(svc)
		shutdown = func(ctx context.Context) {
			if err := svc.Close(ctx); err != nil {
				log.Printf("spirvd: forced drain: %v", err)
			}
		}
	case "coordinator":
		// With -memo-dir the coordinator doubles as the cluster's memo-sync
		// hub: workers pull records they lack and push new ones, so a node
		// that rejoins cold warm-starts from the cluster's history.
		var memo *memostore.Store
		if *memoDir != "" {
			memo, err = memostore.Open(*memoDir, int64(*memoMaxMB)<<20)
			fatal(err)
		}
		co, err := cluster.NewCoordinator(st, cluster.Options{
			ShardTests:     *shardTests,
			ShardCases:     *shardCases,
			LeaseTTL:       *leaseTTL,
			Memo:           memo,
			AdaptiveShards: *adaptiveShards,
			SyncFraction:   *syncFrac,
		})
		fatal(err)
		handler = co.Mux()
		shutdown = func(context.Context) {
			co.Close()
			if memo != nil {
				if err := memo.Close(); err != nil {
					log.Printf("spirvd: memo close: %v", err)
				}
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "spirvd: unknown -role %q (want standalone, coordinator, or worker)\n", *role)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	if *portFile != "" {
		// Atomic write so a watcher never reads a half-written address.
		tmp := *portFile + ".tmp"
		fatal(os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644))
		fatal(os.Rename(tmp, *portFile))
	}
	log.Printf("spirvd: %s listening on %s, store %s", *role, ln.Addr(), *storeDir)

	if *pprofAddr != "" {
		// The import of net/http/pprof registers its handlers on
		// http.DefaultServeMux; serve that mux on its own listener so
		// profiling never shares a port with the JSON API. Listen before
		// logging so ":0" reports the bound port, not the requested one.
		pln, err := net.Listen("tcp", *pprofAddr)
		fatal(err)
		log.Printf("spirvd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("spirvd: pprof: %v", err)
			}
		}()
	}

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("spirvd: %v", err)
		}
	}()

	// -nodes N turns a coordinator into a self-contained single-machine
	// cluster: N in-process worker nodes join over loopback HTTP, each with
	// its own store under <store>/nodes/. They are real protocol clients;
	// only the network is loopback.
	var localWorkers sync.WaitGroup
	if *role == "coordinator" && *nodes > 0 {
		for i := 1; i <= *nodes; i++ {
			name := fmt.Sprintf("local%d", i)
			wopts := cluster.WorkerOptions{
				Node:         name,
				Coordinator:  "http://" + ln.Addr().String(),
				StoreDir:     filepath.Join(*storeDir, "nodes", name),
				Workers:      *workers,
				ReplayBudget: int64(*replayMB) << 20,
				Prefetch:     *prefetch,
				Compress:     *compress,
				Batch:        *batch,
			}
			if *memoDir != "" {
				// Per-node memo stores beside the hub's; each node syncs
				// against the coordinator over the wire like a remote would.
				wopts.MemoDir = filepath.Join(*memoDir, "nodes", name)
				wopts.MemoMaxBytes = int64(*memoMaxMB) << 20
			}
			w, err := cluster.NewWorker(wopts)
			fatal(err)
			localWorkers.Add(1)
			go func() {
				defer localWorkers.Done()
				w.Run(ctx)
				w.Close()
			}()
		}
		log.Printf("spirvd: spawned %d in-process worker nodes", *nodes)
	}

	<-ctx.Done()
	stop()
	log.Printf("spirvd: draining (in-flight jobs finish, pending resume from the journal)")
	localWorkers.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Shutdown(drainCtx)
	shutdown(drainCtx)
	log.Printf("spirvd: bye")
}

type workerConfig struct {
	join      string
	node      string
	storeDir  string
	workers   int
	replayMB  int
	memoDir   string
	memoMaxMB int
	prefetch  bool
	compress  bool
	batch     bool
}

// workerMain runs the worker role: no listener, just a loop pulling shards
// from the coordinator until signaled. A SIGKILLed worker needs no cleanup —
// its leases expire on the coordinator and the shards are re-dispatched.
func workerMain(cfg workerConfig) {
	if cfg.join == "" {
		fmt.Fprintln(os.Stderr, "spirvd: -role worker requires -join")
		os.Exit(2)
	}
	if cfg.node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.node = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Node:         cfg.node,
		Coordinator:  cfg.join,
		StoreDir:     cfg.storeDir,
		Workers:      cfg.workers,
		ReplayBudget: int64(cfg.replayMB) << 20,
		MemoDir:      cfg.memoDir,
		MemoMaxBytes: int64(cfg.memoMaxMB) << 20,
		Prefetch:     cfg.prefetch,
		Compress:     cfg.compress,
		Batch:        cfg.batch,
	})
	fatal(err)
	defer w.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("spirvd: worker %s joining %s, store %s", cfg.node, cfg.join, cfg.storeDir)
	w.Run(ctx)
	log.Printf("spirvd: worker %s bye", cfg.node)
}

// newMux wires the HTTP API. All payloads are JSON; errors are
// {"error": "..."} with a matching status code.
func newMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec service.CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		status, err := svc.CreateCampaign(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Campaigns())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := svc.Campaign(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		sets, err := svc.Buckets(r.URL.Query().Get("campaign"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if sets == nil {
			sets = []service.BucketSet{}
		}
		writeJSON(w, http.StatusOK, sets)
	})
	mux.HandleFunc("POST /bisect", func(w http.ResponseWriter, r *http.Request) {
		var spec service.BisectSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		status, err := svc.CreateBisect(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /bisect", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.BisectJobs())
	})
	mux.HandleFunc("GET /bisect/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := svc.BisectJob(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no bisect job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /bisect/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		set, err := svc.BisectResult(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, set)
	})
	mux.HandleFunc("GET /reports/{hash}", func(w http.ResponseWriter, r *http.Request) {
		blob, err := svc.ReportBlob(r.PathValue("hash"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirvd:", err)
		os.Exit(1)
	}
}
