package main

// The "client" subcommand: a thin JSON client over the spirvd HTTP API, for
// scripting and the end-to-end tests.
//
//	spirvd client submit  -addr HOST:PORT [-tests N] [-tool T] [-targets a,b]
//	                      [-cap-per-signature N] [-reduce-slowdown-ms N] [-wait]
//	spirvd client status  -addr HOST:PORT [ID]
//	spirvd client buckets -addr HOST:PORT [-campaign ID]
//	spirvd client report  -addr HOST:PORT HASH
//	spirvd client bisect  -addr HOST:PORT -campaign ID [-wait]
//	spirvd client bisect-status -addr HOST:PORT [ID]
//	spirvd client bisect-result -addr HOST:PORT ID
//	spirvd client metrics -addr HOST:PORT
//
// Every verb prints the server's JSON response verbatim, so output is
// machine-readable by construction.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"spirvfuzz/internal/service"
)

func clientMain(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "spirvd client: a verb is required: submit, status, buckets, report, bisect, bisect-status, bisect-result, metrics")
		os.Exit(2)
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("spirvd client "+verb, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8741", "daemon address")
	switch verb {
	case "submit":
		tests := fs.Int("tests", 100, "number of generated tests")
		tool := fs.String("tool", "", "fuzzer configuration (default spirv-fuzz)")
		targets := fs.String("targets", "", "comma-separated target names (default all)")
		capPerSig := fs.Int("cap-per-signature", 0, "reductions per (target, signature); 0 means the server default")
		slowdown := fs.Int("reduce-slowdown-ms", 0, "per-query reduction pacing (test knob)")
		precheck := fs.Bool("precheck", false, "cross-bucket pre-check: skip reductions an earlier minimized case already covers (serial; single-node daemons only)")
		wait := fs.Bool("wait", false, "poll until the campaign finishes; exit 1 if it failed")
		fs.Parse(rest)
		spec := service.CampaignSpec{
			Tool:                *tool,
			Tests:               *tests,
			CapPerSignature:     *capPerSig,
			ReduceSlowdownMS:    *slowdown,
			CrossBucketPrecheck: *precheck,
		}
		if *targets != "" {
			spec.Targets = strings.Split(*targets, ",")
		}
		body, err := json.Marshal(spec)
		fatalClient(err)
		data := request(*addr, "POST", "/campaigns", body)
		var status service.CampaignStatus
		fatalClient(json.Unmarshal(data, &status))
		if !*wait {
			os.Stdout.Write(data)
			return
		}
		for {
			data = request(*addr, "GET", "/campaigns/"+status.ID, nil)
			fatalClient(json.Unmarshal(data, &status))
			if status.State == service.StateDone || status.State == service.StateFailed {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		os.Stdout.Write(data)
		if status.State == service.StateFailed {
			os.Exit(1)
		}
	case "status":
		fs.Parse(rest)
		path := "/campaigns"
		if fs.NArg() > 0 {
			path += "/" + url.PathEscape(fs.Arg(0))
		}
		os.Stdout.Write(request(*addr, "GET", path, nil))
	case "buckets":
		campaign := fs.String("campaign", "", "restrict to one campaign ID")
		fs.Parse(rest)
		path := "/buckets"
		if *campaign != "" {
			path += "?campaign=" + url.QueryEscape(*campaign)
		}
		os.Stdout.Write(request(*addr, "GET", path, nil))
	case "report":
		fs.Parse(rest)
		if fs.NArg() != 1 {
			fatalClient(fmt.Errorf("report needs exactly one blob hash"))
		}
		os.Stdout.Write(request(*addr, "GET", "/reports/"+url.PathEscape(fs.Arg(0)), nil))
	case "bisect":
		campaign := fs.String("campaign", "", "finished campaign ID to bisect (required)")
		wait := fs.Bool("wait", false, "poll until the bisection job finishes; exit 1 if it failed")
		fs.Parse(rest)
		if *campaign == "" {
			fatalClient(fmt.Errorf("bisect needs -campaign"))
		}
		body, err := json.Marshal(service.BisectSpec{Campaign: *campaign})
		fatalClient(err)
		data := request(*addr, "POST", "/bisect", body)
		var status service.BisectStatus
		fatalClient(json.Unmarshal(data, &status))
		if !*wait {
			os.Stdout.Write(data)
			return
		}
		for {
			data = request(*addr, "GET", "/bisect/"+status.ID, nil)
			fatalClient(json.Unmarshal(data, &status))
			if status.State == service.StateDone || status.State == service.StateFailed {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		os.Stdout.Write(data)
		if status.State == service.StateFailed {
			os.Exit(1)
		}
	case "bisect-status":
		fs.Parse(rest)
		path := "/bisect"
		if fs.NArg() > 0 {
			path += "/" + url.PathEscape(fs.Arg(0))
		}
		os.Stdout.Write(request(*addr, "GET", path, nil))
	case "bisect-result":
		fs.Parse(rest)
		if fs.NArg() != 1 {
			fatalClient(fmt.Errorf("bisect-result needs exactly one job ID"))
		}
		os.Stdout.Write(request(*addr, "GET", "/bisect/"+url.PathEscape(fs.Arg(0))+"/result", nil))
	case "metrics":
		fs.Parse(rest)
		os.Stdout.Write(request(*addr, "GET", "/metrics", nil))
	default:
		fmt.Fprintf(os.Stderr, "spirvd client: unknown verb %q\n", verb)
		os.Exit(2)
	}
}

// request performs one API call and returns the response body; any transport
// error or non-2xx status is fatal with the server's error text.
func request(addr, method, path string, body []byte) []byte {
	req, err := http.NewRequest(method, "http://"+addr+path, bytes.NewReader(body))
	fatalClient(err)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	fatalClient(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	fatalClient(err)
	if resp.StatusCode/100 != 2 {
		fatalClient(fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data)))
	}
	return data
}

func fatalClient(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirvd client:", err)
		os.Exit(1)
	}
}
