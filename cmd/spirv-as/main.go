// spirv-as assembles a textual SPIR-V listing into a binary module:
//
//	spirv-as -in shader.spvasm -o shader.spv [-validate]
package main

import (
	"flag"
	"fmt"
	"os"

	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/spirv/validate"
)

func main() {
	in := flag.String("in", "", "input textual listing")
	out := flag.String("o", "out.spv", "output binary module")
	check := flag.Bool("validate", false, "validate before writing")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "spirv-as: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	fatal(err)
	m, err := asm.Parse(string(data))
	fatal(err)
	if *check {
		fatal(validate.Module(m))
	}
	fatal(os.WriteFile(*out, m.EncodeBytes(), 0o644))
	fmt.Printf("spirv-as: %d instructions, %d bytes\n", m.InstructionCount(), len(m.EncodeBytes()))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-as:", err)
		os.Exit(1)
	}
}
