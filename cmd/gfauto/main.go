// gfauto is the campaign framework (Section 3.2): it runs the three fuzzer
// configurations against the nine simulated targets and regenerates the
// paper's tables and figures.
//
//	gfauto -list-targets
//	gfauto -tests 1000 -groups 10 -table3 -venn -rq2 -table4
//	gfauto -tests 10000 -groups 10 -all        # paper-scale
//
// All experiments derive from one set of campaigns, so combining flags
// amortizes the fuzzing cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/cluster"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/experiments"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
	"spirvfuzz/internal/target"
)

func main() {
	tests := flag.Int("tests", 300, "tests per tool configuration (paper: 10000)")
	groups := flag.Int("groups", 10, "disjoint groups for medians and MWU (paper: 10)")
	capPerSig := flag.Int("cap-per-signature", 6, "reductions per bug signature (paper: 100 / 20)")
	workers := flag.Int("workers", 0, "execution-engine worker pool size; 0 means GOMAXPROCS (results are identical for any value)")
	replayMB := flag.Int("replay-cache-mb", 64, "prefix-snapshot replay cache budget for reductions, in MiB; 0 disables incremental replay (results are identical either way)")
	memoDir := flag.String("memo-dir", "", "persistent execution memo store directory; repeat runs warm-start from it (results are identical either way)")
	memoMaxMB := flag.Int("memo-max-mb", 256, "memo store size budget in MiB before old segments are compacted or evicted")
	listTargets := flag.Bool("list-targets", false, "print Table 2 and exit")
	listRefs := flag.Bool("list-references", false, "print the reference corpus and exit")
	table3 := flag.Bool("table3", false, "regenerate Table 3 (bug-finding ability)")
	venn := flag.Bool("venn", false, "regenerate Figure 7 (complementarity)")
	rq2 := flag.Bool("rq2", false, "regenerate the RQ2 reduction-quality medians")
	table4 := flag.Bool("table4", false, "regenerate Table 4 (deduplication)")
	bisectRQ := flag.Bool("bisect", false, "run the bisection RQ: transform vs bisect vs intersection dedup on the Table 4 corpus")
	exportReports := flag.String("export-reports", "", "reduce and export a bug-report bundle per distinct signature (Section 5 mode)")
	all := flag.Bool("all", false, "regenerate everything")
	asJSON := flag.Bool("json", false, "emit per-tool campaign summaries as JSON (the shape spirvd serves) instead of tables")
	clusterProbe := flag.Int("cluster-probe", 0, "run a small probe campaign over this many in-process cluster nodes and report transfer/prefetch/shard-sizing counters")
	interpEngine := flag.String("interp", "vm", "interpreter engine: vm (compile-once register VM) or tree (tree-walking reference; results are identical)")
	lanes := flag.String("lanes", "0", `pixels per VM instruction, warp-style: a lane count (0 = scalar, max 16) or "auto" to probe each render (results are identical either way)`)
	flag.Parse()
	fatal(setInterpEngine(*interpEngine))
	fatal(interp.SetLanesFlag(*lanes))

	if *listTargets {
		fmt.Print(experiments.Table2())
		return
	}
	if *listRefs {
		for _, item := range corpus.References() {
			img, err := interp.Render(item.Mod, item.Inputs)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s %4d instructions  image %s\n", item.Name, item.Mod.InstructionCount(), img.Hash())
		}
		return
	}
	if *all {
		*table3, *venn, *rq2, *table4, *bisectRQ = true, true, true, true, true
	}
	if !*table3 && !*venn && !*rq2 && !*table4 && !*bisectRQ && *exportReports == "" && !*asJSON && *clusterProbe <= 0 {
		fmt.Fprintln(os.Stderr, "gfauto: nothing to do; pass -table3/-venn/-rq2/-table4/-bisect/-cluster-probe/-all/-json or -list-targets")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	if !*asJSON {
		fmt.Printf("gfauto: running 3 campaigns of %d tests each over 9 targets...\n", *tests)
	}
	replayCfg := *replayMB
	if replayCfg == 0 {
		replayCfg = -1 // the config's "disabled" convention
	}
	c, err := experiments.RunCampaigns(experiments.Config{
		Tests: *tests, Groups: *groups, CapPerSignature: *capPerSig,
		Workers: *workers, ReplayCacheMB: replayCfg,
		MemoDir: *memoDir, MemoMaxMB: *memoMaxMB,
	})
	fatal(err)
	if c.Memo != nil {
		defer func() { fatal(c.Memo.Close()) }()
	}
	if !*asJSON {
		st := c.Engine.Stats()
		fmt.Printf("gfauto: campaigns done in %v (%d workers, %d target runs, %.0f%% cache hit rate)\n",
			time.Since(start).Round(time.Millisecond), st.Workers, st.Misses, 100*st.HitRate())
		fmt.Printf("gfauto: shared compiles: %d compiled, %d shared (%.0f%% of compile lookups)\n",
			st.CompileMisses, st.CompileHits, 100*ratio(st.CompileHits, st.CompileHits+st.CompileMisses))
		if st.MemoHits+st.MemoMisses > 0 {
			fmt.Printf("gfauto: memo store: %d disk hits, %d misses, %d spilled, %d singleflight-shared (%.0f%% warm)\n",
				st.MemoHits, st.MemoMisses, st.MemoSpills, st.SingleflightHits,
				100*ratio(st.MemoHits, st.MemoHits+st.MemoMisses))
		}
		if st.PlanHits+st.PlanMisses > 0 {
			fmt.Printf("gfauto: interp plans: %d compiled in %v, %d shared (%.0f%% of plan lookups)\n",
				st.PlanMisses, time.Duration(st.PlanCompileNanos).Round(time.Millisecond),
				st.PlanHits, 100*ratio(st.PlanHits, st.PlanHits+st.PlanMisses))
		}
		for _, p := range st.OptPasses {
			fmt.Printf("gfauto: opt pass %-18s %7d runs  %7d changed  %8v\n",
				p.Name, p.Runs, p.Changed, time.Duration(p.Nanos).Round(time.Millisecond))
		}
		if st.LaneGroups > 0 {
			fmt.Printf("gfauto: lane groups: %d launched, %d divergences, %d pixels retired to the scalar VM (%.1f%%)\n",
				st.LaneGroups, st.LaneDivergences, st.ScalarFallbacks,
				100*ratio(st.ScalarFallbacks, st.LaneGroups*uint64(interp.Lanes())))
		}
		if scalar, eight, sixteen := interp.AutoLanePicks(); interp.LanesAuto() && scalar+eight+sixteen > 0 {
			fmt.Printf("gfauto: auto lanes: %d renders probed to scalar, %d to 8-lane, %d to 16-lane\n",
				scalar, eight, sixteen)
		}
		fmt.Println()
	}

	// The bisection RQ runs before the -json dump so its counters are
	// included when both flags are set.
	var bisectRes *experiments.BisectRQResult
	if *bisectRQ {
		bisectRes, err = experiments.BisectRQ(c)
		fatal(err)
	}

	// The cluster probe is a real measurement, not a replay of counters: a
	// small campaign runs over N in-process nodes (loopback HTTP, pipelined
	// transport) and the transfer/prefetch/shard-sizing counters that
	// produced are reported.
	var probeCluster *cluster.ClusterStats
	var probeWire *cluster.WireStats
	if *clusterProbe > 0 {
		cs, ws, err := clusterProbeRun(*clusterProbe)
		fatal(err)
		probeCluster, probeWire = &cs, &ws
		if !*asJSON {
			fmt.Printf("gfauto: cluster probe (%d nodes): %d shards done (%d prefetched, %d requeued, %d duplicate), %d round trips, %d wire / %d raw bytes, blob dedup %.0f%%\n",
				*clusterProbe, cs.ShardsCompleted, cs.Sync.Prefetched, cs.ShardsRequeued, cs.ShardsDuplicate,
				ws.RoundTrips, ws.WireBytesOut+ws.WireBytesIn, ws.RawBytesOut+ws.RawBytesIn,
				100*cs.BlobDedupFraction)
			for _, sz := range cs.Sizing {
				fmt.Printf("gfauto: cluster probe sizing: %-6s shard size %d/%d (unit %.1fms, sync %.1fms, %d resizes)\n",
					sz.Phase, sz.Size, sz.MaxSize, sz.UnitMS, sz.SyncMS, sz.Resizes)
			}
		}
	}

	if *asJSON {
		var memoStats *memostore.Stats
		if c.Memo != nil {
			ms := c.Memo.Stats()
			memoStats = &ms
		}
		out, err := json.MarshalIndent(struct {
			Campaigns []service.CampaignStatus `json:"campaigns"`
			Runner    runner.Stats             `json:"runner"`
			Bisect    bisect.Stats             `json:"bisect"`
			Memo      *memostore.Stats         `json:"memo,omitempty"`
			Cluster   *cluster.ClusterStats    `json:"cluster,omitempty"`
			Wire      *cluster.WireStats       `json:"wire,omitempty"`
		}{campaignSummaries(c), c.Engine.Stats(), c.BisectStats(), memoStats, probeCluster, probeWire}, "", "  ")
		fatal(err)
		fmt.Println(string(out))
	}

	if *table3 {
		fmt.Println(experiments.RenderTable3(experiments.Table3(c)))
	}
	if *venn {
		fmt.Println(experiments.RenderFigure7(experiments.Figure7(c)))
	}
	if *rq2 {
		fmt.Println(experiments.RenderRQ2(experiments.RQ2(c)))
	}
	if *table4 {
		fmt.Println(experiments.RenderTable4(experiments.Table4(c)))
	}
	if bisectRes != nil {
		fmt.Println(experiments.RenderBisectRQ(bisectRes))
	}
	if *exportReports != "" {
		rep, err := experiments.ExportWildReports(c, *exportReports)
		fatal(err)
		fmt.Println(experiments.RenderWild(rep))
	}
	if rst := c.Replay.Stats(); rst.Queries > 0 {
		fmt.Printf("gfauto: replay cache: %d ddmin queries, %.0f%% prefix hits, mean suffix %.1f of %.1f transformations (%.0f%% replay work saved), %d snapshots (%.1f MiB), %d evictions\n",
			rst.Queries, 100*rst.HitRate(), rst.MeanSuffix(), rst.MeanRequested(),
			100*rst.SavedFraction(), rst.Snapshots, float64(rst.Bytes)/(1<<20), rst.Evictions)
	}
}

// campaignSummaries renders the three experiment campaigns in the shape the
// spirvd daemon serves (service.CampaignStatus), one entry per tool
// configuration, so scripted consumers can treat one-shot gfauto runs and
// daemon campaigns uniformly.
func campaignSummaries(c *experiments.Campaigns) []service.CampaignStatus {
	var targets []string
	for _, tg := range target.All() {
		targets = append(targets, tg.Name)
	}
	seedBases := map[harness.Tool]int64{
		harness.ToolSpirvFuzzSimple: 1 << 32,
		harness.ToolGlslFuzz:        2 << 32,
	}
	var out []service.CampaignStatus
	for _, res := range []*harness.CampaignResult{c.Fuzz, c.Simple, c.Glsl} {
		if res == nil {
			continue
		}
		out = append(out, service.CampaignStatus{
			ID:    string(res.Tool),
			State: service.StateDone,
			Spec: service.CampaignSpec{
				Tool:            string(res.Tool),
				Tests:           res.Tests,
				SeedBase:        seedBases[res.Tool],
				Targets:         targets,
				CapPerSignature: c.Config.CapPerSignature,
			},
			TestsDone: res.Tests,
			Bugs:      len(res.BugOutcomes),
		})
	}
	return out
}

// clusterProbeRun runs a small fixed campaign over an n-node in-process
// cluster — temp stores, loopback HTTP, pipelined transport, adaptive
// shards — and returns the coordinator's cluster counters plus the
// process-wide wire-transfer delta the probe produced.
func clusterProbeRun(n int) (cluster.ClusterStats, cluster.WireStats, error) {
	var zero cluster.ClusterStats
	var zw cluster.WireStats
	dir, err := os.MkdirTemp("", "gfauto-cluster-*")
	if err != nil {
		return zero, zw, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "hub"))
	if err != nil {
		return zero, zw, err
	}
	defer st.Close()
	co, err := cluster.NewCoordinator(st, cluster.Options{AdaptiveShards: true})
	if err != nil {
		return zero, zw, err
	}
	defer co.Close()
	before := cluster.SnapshotWire()
	sim, err := cluster.StartSim(co, n, dir, 2)
	if err != nil {
		return zero, zw, err
	}
	defer sim.Stop()
	status, err := co.CreateCampaign(service.CampaignSpec{Tests: 24})
	if err != nil {
		return zero, zw, err
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		cs, ok := co.Campaign(status.ID)
		if ok && cs.State == service.StateDone {
			break
		}
		if ok && cs.State == service.StateFailed {
			return zero, zw, fmt.Errorf("cluster probe campaign failed: %s", cs.Error)
		}
		if time.Now().After(deadline) {
			return zero, zw, fmt.Errorf("cluster probe campaign timed out")
		}
		time.Sleep(50 * time.Millisecond)
	}
	return co.Metrics().Cluster, cluster.SnapshotWire().Sub(before), nil
}

// ratio is a/b guarding the empty case.
func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// setInterpEngine applies the -interp flag to the process-wide interpreter
// engine selection.
func setInterpEngine(name string) error {
	switch name {
	case "vm":
		interp.SetTreeWalker(false)
	case "tree":
		interp.SetTreeWalker(true)
	default:
		return fmt.Errorf("unknown -interp engine %q (want vm or tree)", name)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfauto:", err)
		os.Exit(1)
	}
}
