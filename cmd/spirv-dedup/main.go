// spirv-dedup applies the deduplication heuristics of Section 3.5 to a
// directory of reduced test cases:
//
//	spirv-dedup -dir reduced-cases/ [-signal transform|bisect|both]
//
// Each *.json file in the directory must contain
//
//	{"signature": "...", "transformations": [...]}
//
// where transformations is a minimized sequence as written by spirv-reduce.
// The default transform signal is the Figure 6 heuristic: the tool prints
// the test cases recommended for manual investigation, and no two
// recommendations share a (non-supporting) transformation type.
//
// The bisect signal buckets cases by (target, first bad release) instead:
// each case is replayed against its reference module and bisected over the
// target's release history. It needs report-shaped files — the blobs spirvd
// serves under /reports/{hash} — which additionally carry
//
//	{"target": "...", "reference": "..."}
//
// naming the simulated target and the reference-corpus item the case was
// fuzzed from. The both signal intersects the two: the transform heuristic
// runs within each bisection bucket, suppressing a report only when both
// signals agree it is a duplicate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

type caseFile struct {
	Signature       string          `json:"signature"`
	Target          string          `json:"target"`
	Reference       string          `json:"reference"`
	Transformations json.RawMessage `json:"transformations"`
}

func main() {
	dir := flag.String("dir", "", "directory of reduced test-case JSON files")
	signal := flag.String("signal", "transform", "dedup signal: transform, bisect, or both (intersection)")
	showTypes := flag.Bool("types", false, "print each recommendation's transformation-type set")
	asJSON := flag.Bool("json", false, "emit the result as JSON (the shape spirvd serves: a bucket set for the transform signal, a bisect set otherwise)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "spirv-dedup: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if *signal != "transform" && *signal != "bisect" && *signal != "both" {
		fatal(fmt.Errorf("unknown -signal %q: want transform, bisect or both", *signal))
	}
	entries, err := os.ReadDir(*dir)
	fatal(err)
	var cases []dedup.Case
	files := map[string]caseFile{}
	// Content addresses of the case files, keyed by case name; with -json
	// they are reported as report hashes, matching spirvd's blob addressing.
	hashes := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
		fatal(err)
		var cf caseFile
		fatal(json.Unmarshal(data, &cf))
		seq, err := fuzz.UnmarshalSequence(cf.Transformations)
		fatal(err)
		cases = append(cases, dedup.Case{Name: e.Name(), Sequence: seq, Signature: cf.Signature})
		files[e.Name()] = cf
		hashes[e.Name()] = store.HashBytes(data)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	if len(cases) == 0 {
		fatal(fmt.Errorf("no .json test cases in %s", *dir))
	}
	ignore := fuzz.SupportingTypes()

	if *signal == "transform" {
		recommended := dedup.Recommend(cases)
		if *asJSON {
			set := service.BucketSet{Campaign: filepath.Base(*dir), Buckets: []service.Bucket{}}
			for _, c := range recommended {
				set.Buckets = append(set.Buckets, service.Bucket{
					Case:        c.Name,
					Signature:   c.Signature,
					Types:       core.SortedTypes(core.TypeSet(c.Sequence, ignore)),
					SequenceLen: len(c.Sequence),
					ReportHash:  hashes[c.Name],
				})
			}
			out, err := json.MarshalIndent(set, "", "  ")
			fatal(err)
			fmt.Println(string(out))
			return
		}
		fmt.Printf("spirv-dedup: %d test cases -> %d recommended for investigation\n", len(cases), len(recommended))
		for _, c := range recommended {
			fmt.Printf("  %s\n", c.Name)
			if *showTypes {
				types := core.SortedTypes(core.TypeSet(c.Sequence, ignore))
				fmt.Printf("    types: %s\n", strings.Join(types, ", "))
			}
		}
		return
	}

	bcases, outcomes := bisectCases(cases, files)
	var recommended []dedup.BisectCase
	if *signal == "bisect" {
		recommended = dedup.RecommendBisect(bcases)
	} else {
		recommended = dedup.RecommendIntersection(bcases)
	}
	if *asJSON {
		plain := make([]dedup.Case, len(bcases))
		for i, bc := range bcases {
			plain[i] = bc.Case
		}
		set := service.BisectSet{
			Job:                 *signal,
			Campaign:            filepath.Base(*dir),
			Outcomes:            outcomes,
			TransformBuckets:    len(dedup.Recommend(plain)),
			BisectBuckets:       len(dedup.RecommendBisect(bcases)),
			IntersectionBuckets: len(dedup.RecommendIntersection(bcases)),
		}
		out, err := json.MarshalIndent(set, "", "  ")
		fatal(err)
		fmt.Println(string(out))
		return
	}
	fmt.Printf("spirv-dedup: %d test cases -> %d recommended for investigation (%s signal)\n", len(cases), len(recommended), *signal)
	for _, c := range recommended {
		fmt.Printf("  %s (first bad %s@%s)\n", c.Name, c.Target, c.FirstBad)
		if *showTypes {
			types := core.SortedTypes(core.TypeSet(c.Sequence, ignore))
			fmt.Printf("    types: %s\n", strings.Join(types, ", "))
		}
	}
}

// bisectCases replays every case against its reference module and bisects it
// over the target's release history. The input is sorted by name, bisection
// verdicts are deterministic, and both facts together make every downstream
// recommendation deterministic too.
func bisectCases(cases []dedup.Case, files map[string]caseFile) ([]dedup.BisectCase, []service.BisectOutcome) {
	refs := map[string]corpus.Item{}
	for _, it := range corpus.References() {
		refs[it.Name] = it
	}
	eng := runner.New(0)
	beng := bisect.New(eng)
	reng := replay.NewEngine(0) // one replay per case; caching buys nothing
	bcases := make([]dedup.BisectCase, 0, len(cases))
	outcomes := make([]service.BisectOutcome, 0, len(cases))
	for _, c := range cases {
		cf := files[c.Name]
		if cf.Target == "" || cf.Reference == "" {
			fatal(fmt.Errorf("%s: the bisect signal needs report-shaped cases with target and reference fields", c.Name))
		}
		item, ok := refs[cf.Reference]
		if !ok {
			fatal(fmt.Errorf("%s: unknown reference corpus item %q", c.Name, cf.Reference))
		}
		keep := make([]int, len(c.Sequence))
		for i := range keep {
			keep[i] = i
		}
		fc, _ := reng.NewSession(item.Mod, item.Inputs, c.Sequence).Replay(keep)
		res, err := beng.Bisect(bisect.Case{
			Target:         cf.Target,
			Signature:      c.Signature,
			Original:       item.Mod,
			OriginalInputs: item.Inputs,
			Variant:        fc.Mod,
			Inputs:         fc.Inputs,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.Name, err))
		}
		bcases = append(bcases, dedup.BisectCase{Case: c, Target: cf.Target, FirstBad: res.FirstBad})
		outcomes = append(outcomes, service.BisectOutcome{
			Case:      c.Name,
			Target:    cf.Target,
			Signature: c.Signature,
			FirstBad:  res.FirstBad,
			Queries:   res.Queries,
			CacheHits: res.CacheHits,
		})
	}
	return bcases, outcomes
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-dedup:", err)
		os.Exit(1)
	}
}
