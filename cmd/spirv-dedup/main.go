// spirv-dedup applies the deduplication heuristic of Figure 6 / Section 3.5
// to a directory of reduced test cases:
//
//	spirv-dedup -dir reduced-cases/
//
// Each *.json file in the directory must contain
//
//	{"signature": "...", "transformations": [...]}
//
// where transformations is a minimized sequence as written by spirv-reduce.
// The tool prints the test cases recommended for manual investigation; no
// two recommendations share a (non-supporting) transformation type.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
)

type caseFile struct {
	Signature       string          `json:"signature"`
	Transformations json.RawMessage `json:"transformations"`
}

func main() {
	dir := flag.String("dir", "", "directory of reduced test-case JSON files")
	showTypes := flag.Bool("types", false, "print each recommendation's transformation-type set")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "spirv-dedup: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	entries, err := os.ReadDir(*dir)
	fatal(err)
	var cases []dedup.Case
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
		fatal(err)
		var cf caseFile
		fatal(json.Unmarshal(data, &cf))
		seq, err := fuzz.UnmarshalSequence(cf.Transformations)
		fatal(err)
		cases = append(cases, dedup.Case{Name: e.Name(), Sequence: seq, Signature: cf.Signature})
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	if len(cases) == 0 {
		fatal(fmt.Errorf("no .json test cases in %s", *dir))
	}
	recommended := dedup.Recommend(cases)
	fmt.Printf("spirv-dedup: %d test cases -> %d recommended for investigation\n", len(cases), len(recommended))
	ignore := fuzz.SupportingTypes()
	for _, c := range recommended {
		fmt.Printf("  %s\n", c.Name)
		if *showTypes {
			types := core.SortedTypes(core.TypeSet(c.Sequence, ignore))
			fmt.Printf("    types: %s\n", strings.Join(types, ", "))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-dedup:", err)
		os.Exit(1)
	}
}
