// spirv-dedup applies the deduplication heuristic of Figure 6 / Section 3.5
// to a directory of reduced test cases:
//
//	spirv-dedup -dir reduced-cases/
//
// Each *.json file in the directory must contain
//
//	{"signature": "...", "transformations": [...]}
//
// where transformations is a minimized sequence as written by spirv-reduce.
// The tool prints the test cases recommended for manual investigation; no
// two recommendations share a (non-supporting) transformation type.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

type caseFile struct {
	Signature       string          `json:"signature"`
	Transformations json.RawMessage `json:"transformations"`
}

func main() {
	dir := flag.String("dir", "", "directory of reduced test-case JSON files")
	showTypes := flag.Bool("types", false, "print each recommendation's transformation-type set")
	asJSON := flag.Bool("json", false, "emit the recommendations as a JSON bucket set (the shape spirvd serves)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "spirv-dedup: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	entries, err := os.ReadDir(*dir)
	fatal(err)
	var cases []dedup.Case
	// Content addresses of the case files, keyed by case name; with -json
	// they are reported as report hashes, matching spirvd's blob addressing.
	hashes := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
		fatal(err)
		var cf caseFile
		fatal(json.Unmarshal(data, &cf))
		seq, err := fuzz.UnmarshalSequence(cf.Transformations)
		fatal(err)
		cases = append(cases, dedup.Case{Name: e.Name(), Sequence: seq, Signature: cf.Signature})
		hashes[e.Name()] = store.HashBytes(data)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	if len(cases) == 0 {
		fatal(fmt.Errorf("no .json test cases in %s", *dir))
	}
	recommended := dedup.Recommend(cases)
	ignore := fuzz.SupportingTypes()
	if *asJSON {
		set := service.BucketSet{Campaign: filepath.Base(*dir), Buckets: []service.Bucket{}}
		for _, c := range recommended {
			set.Buckets = append(set.Buckets, service.Bucket{
				Case:        c.Name,
				Signature:   c.Signature,
				Types:       core.SortedTypes(core.TypeSet(c.Sequence, ignore)),
				SequenceLen: len(c.Sequence),
				ReportHash:  hashes[c.Name],
			})
		}
		out, err := json.MarshalIndent(set, "", "  ")
		fatal(err)
		fmt.Println(string(out))
		return
	}
	fmt.Printf("spirv-dedup: %d test cases -> %d recommended for investigation\n", len(cases), len(recommended))
	for _, c := range recommended {
		fmt.Printf("  %s\n", c.Name)
		if *showTypes {
			types := core.SortedTypes(core.TypeSet(c.Sequence, ignore))
			fmt.Printf("    types: %s\n", strings.Join(types, ", "))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spirv-dedup:", err)
		os.Exit(1)
	}
}
